/**
 * @file
 * Rename stage with register integration (the paper's section 2).
 *
 * Per instruction: translate sources through the map table, attempt
 * integration against the IT, then either share the matched physical
 * register (reference-count increment, no reservation station) or
 * allocate a fresh register and create IT entries (direct, and reverse
 * entries for stack stores / stack-pointer decrements).
 *
 * Integrated conditional branches resolve immediately: a disagreement
 * with the front-end prediction redirects fetch from rename.
 */

#include "base/log.hh"
#include "cpu/core.hh"
#include "trace/coverage.hh"

namespace rix
{

bool
Core::oracleWouldMisintegrate(const DynInst &di,
                              const IntegrationResult &res) const
{
    // Oracle mis-integration suppression: veto an integration whose
    // value can be proven wrong right now. Approximation of the paper's
    // oracle: when the candidate register's value or the instruction's
    // inputs are not available yet, the integration is allowed.
    if (res.isBranch || !res.integrated)
        return false;

    const Instruction &inst = di.inst;
    if (inst.isLoad()) {
        // An older store with an unresolved address but the same base
        // register and displacement is about to write the load's
        // location (the spill-slot update idiom): the reuse would be
        // stale. Suppress regardless of value readiness.
        for (const SqEntry &e : sq) {
            if (e.seq >= di.seq)
                break;
            if (e.resolved)
                continue;
            const DynInst &st = pool.get(e.owner);
            if (st.seq == e.seq && st.psrc1 == di.psrc1 &&
                st.inst.imm == inst.imm)
                return true;
        }
        if (!regState.ready(res.preg) || !regState.ready(di.psrc1))
            return false;
        const Addr addr = pregValue[di.psrc1] + u64(s64(inst.imm));
        const u64 correct = loadValue(
            inst.op, memReadOverlay(addr, di.dec->size, di.seq));
        return correct != pregValue[res.preg];
    }

    if (!regState.ready(res.preg))
        return false;
    const u64 current = pregValue[res.preg];
    if (di.hasSrc1 && !regState.ready(di.psrc1))
        return false;
    if (di.hasSrc2 && !regState.ready(di.psrc2))
        return false;
    const u64 a = di.hasSrc1 ? pregValue[di.psrc1] : 0;
    const u64 b = di.hasSrc2 ? pregValue[di.psrc2] : 0;
    return aluCompute(inst, a, b) != current;
}

void
Core::applyIntegration(DynInst &di, const IntegrationResult &res)
{
    di.integrated = true;
    di.reverseIntegrated = res.reverse;
    di.producerSeq = res.producerSeq;
    di.sourceEntry = res.entryHandle;

    if (res.isBranch) {
        if (cov_)
            cov_->set(kCovIntegBranch);
        // Outcome reuse: resolve the branch right now.
        di.actualTaken = res.taken;
        di.actualTarget = InstAddr(u32(di.inst.imm));
        di.resolved = true;
        di.integStatus = IntegStatus::Retire; // producer outcome known
        completeNow(di, cycle);
        return;
    }

    // Figure-5 status/refcount accounting, observed pre-increment.
    const u8 count_before = regState.count(res.preg);
    if (count_before == 0) {
        di.integStatus = IntegStatus::ShadowSquash;
    } else if (DynInst *prod = findInst(res.producerSeq)) {
        di.integStatus = prod->issued ? IntegStatus::Issue
                                      : IntegStatus::Rename;
    } else {
        di.integStatus = IntegStatus::Retire;
    }

    regState.addRef(res.preg);
    di.refcountAfter = regState.count(res.preg);

    const LogReg dst = di.inst.rc;
    di.hasDest = true;
    di.pdest = res.preg;
    di.gdest = res.gen;
    di.oldDest = map[dst].preg;
    di.oldDestGen = map[dst].gen;
    di.oldDestValid = true;
    map[dst] = {res.preg, res.gen};

    if (regState.ready(res.preg)) {
        completeNow(di, cycle);
    } else {
        integWaiters[res.preg].push_back({di.selfHandle, di.seq});
    }
}


void
Core::finishRenameCommon(DynInst &di)
{
    di.renamed = true;
    di.renameCycle = cycle;
    di.renameStreamPos = ++renameStreamPos;
    di.earliestIssue = cycle + p.issueDelay();
    ++stats_.renamed;
}

bool
Core::renameOne(InstHandle h)
{
    DynInst &di = pool.get(h);
    const Instruction &inst = di.inst;
    const DecodedInst &dec = *di.dec;

    // ---- structural resource checks (stall = leave in fetch queue) ----
    if (rob.size() >= p.robSize)
        return false;
    if (dec.isMem() && lq.size() + sq.size() >= p.maxMemOps)
        return false;

    // ---- source mapping (operands pre-resolved at decode) ----
    di.hasSrc1 = dec.readsRa();
    di.hasSrc2 = dec.readsRb();
    if (di.hasSrc1) {
        const Mapping m = lookupMap(LogReg(dec.src1));
        di.psrc1 = m.preg;
        di.gsrc1 = m.gen;
    }
    if (di.hasSrc2) {
        const Mapping m = lookupMap(LogReg(dec.src2));
        di.psrc2 = m.preg;
        di.gsrc2 = m.gen;
    }

    // ---- integration attempt ----
    RenameCandidate cand;
    cand.inst = inst;
    cand.pc = di.pc;
    cand.callDepth = di.pred.callDepth;
    cand.seq = renameStreamPos + 1; // position this inst will take
    cand.hasSrc1 = di.hasSrc1;
    cand.hasSrc2 = di.hasSrc2;
    cand.src1 = di.psrc1;
    cand.src2 = di.psrc2;
    cand.src1Gen = di.gsrc1;
    cand.src2Gen = di.gsrc2;

    IntegrationResult res = integ.tryIntegrate(cand);
    if (res.suppressed) {
        ++stats_.lispFalseCandidates;
        if (cov_)
            cov_->set(kCovLispSuppress);
    }
    if (res.integrated && p.integ.lisp == LispMode::Oracle &&
        oracleWouldMisintegrate(di, res)) {
        ++stats_.oracleSuppressions;
        if (cov_)
            cov_->set(kCovOracleSuppress);
        res = IntegrationResult{};
    }

    if (res.integrated) {
        finishRenameCommon(di);
        applyIntegration(di, res);
        // Reverse entries for stack-pointer decrements are created even
        // when the decrement itself integrated.
        integ.recordEntries(cand, di.hasDest, di.pdest, di.gdest,
                            /*integrated=*/true);

        const bool redirect =
            di.resolved && di.actualNextPc() != di.predictedNextPc();
        rob.push_back(h);
        if (redirect) {
            // Early (rename-time) branch resolution: the front end is
            // on the wrong path.
            if (cov_)
                cov_->set(kCovRenameRedirect);
            di.mispredicted = true;
            ++stats_.branchMispredicts;
            squashFrom(di, /*include_boundary=*/false, di.actualNextPc(),
                       p.squashPenalty, SquashCause::Branch);
        }
        return true;
    }

    // ---- normal rename path ----
    di.needsRs = dec.needsRs();
    if (di.needsRs && rsBusy >= p.rsSize)
        return false;
    if (dec.writesReg() && !regState.canAllocate())
        return false;

    if (dec.writesReg()) {
        const LogReg dst = inst.rc;
        di.hasDest = true;
        di.pdest = regState.allocate();
        di.gdest = regState.gen(di.pdest);
        di.oldDest = map[dst].preg;
        di.oldDestGen = map[dst].gen;
        di.oldDestValid = true;
        map[dst] = {di.pdest, di.gdest};
    }

    finishRenameCommon(di);
    cand.seq = di.renameStreamPos;
    di.createdEntry = integ.recordEntries(cand, di.hasDest, di.pdest,
                                          di.gdest, /*integrated=*/false);

    if (di.needsRs) {
        ++rsBusy;
        di.inRs = true;
        rsList.push_back({h, di.seq});
    }

    // Queue allocation for memory operations.
    if (dec.isLoad()) {
        lq.push_back(
            LqEntry{di.seq, di.selfHandle, 0, dec.size, false, 0});
        di.lqIdx = 0; // marker: owns an LQ entry
    } else if (dec.isStore()) {
        sq.push_back(
            SqEntry{di.seq, di.selfHandle, 0, dec.size, 0, false});
        di.sqIdx = 0; // marker: owns an SQ entry
    }

    // Instructions that never enter the execution engine.
    switch (dec.instClass()) {
      case InstClass::Jump:
        di.resolved = true;
        di.actualTaken = true;
        di.actualTarget = InstAddr(u32(inst.imm));
        completeNow(di, cycle);
        break;
      case InstClass::Call:
        di.resolved = true;
        di.actualTaken = true;
        di.actualTarget = InstAddr(u32(inst.imm));
        pregValue[di.pdest] = di.pc + 1;
        regState.markReady(di.pdest);
        completeNow(di, cycle);
        break;
      case InstClass::Syscall:
        // Architecturally executed at retirement by the golden model;
        // the register result (always zero) is available immediately.
        if (di.hasDest) {
            pregValue[di.pdest] = 0;
            regState.markReady(di.pdest);
        }
        completeNow(di, cycle);
        break;
      case InstClass::Nop:
      case InstClass::Halt:
        completeNow(di, cycle);
        break;
      default:
        break;
    }

    rob.push_back(h);
    return true;
}

void
Core::renameStage()
{
    for (unsigned w = 0; w < p.renameWidth; ++w) {
        if (fetchQueue.empty())
            return;
        if (pool.get(fetchQueue.front()).renameReadyCycle > cycle)
            return;
        // Detach the head so a rename-time redirect (which clears the
        // fetch queue) cannot drop it: by the time a redirect squashes,
        // the handle is already parked in the ROB.
        const InstHandle h = fetchQueue.pop_front();
        if (!renameOne(h)) {
            // Structural stall: put it back and stop renaming.
            fetchQueue.push_front(h);
            return;
        }
    }
}

} // namespace rix
