/**
 * @file
 * DIVA checking, retirement, and squash recovery.
 *
 * The DIVA checker is the in-order golden emulator stepping in lockstep
 * with retirement: every retiring instruction's pipeline-produced
 * result is compared against the architecturally correct one. A
 * mismatch on an integrated instruction is a mis-integration (full
 * pipeline flush including the offender, modeled as a monolithic
 * one-cycle recovery, plus LISP training and IT-entry invalidation); a
 * mismatch on anything else is a simulator bug and panics — the checker
 * doubles as an end-to-end correctness oracle for the whole model.
 *
 * Squash recovery walks the ROB youngest-first, restoring the map table
 * and undoing reference-count increments serially (the paper's
 * ROB-based serial undo), and repairs the front-end history/RAS from
 * the boundary instruction's checkpoints.
 */

#include "base/log.hh"
#include "cpu/core.hh"
#include "trace/coverage.hh"

namespace rix
{

void
Core::undoRename(DynInst &di)
{
    if (!di.renamed)
        return;
    if (di.hasDest) {
        map[di.inst.rc] = {di.oldDest, di.oldDestGen};
        regState.releaseSquash(di.pdest);
    }
    if (di.inRs) {
        di.inRs = false;
        --rsBusy;
    }
}

void
Core::squashFrom(DynInst &boundary, bool include_boundary, InstAddr new_pc,
                 unsigned penalty, SquashCause cause)
{
    const InstSeqNum bseq =
        include_boundary ? boundary.seq - 1 : boundary.seq;

    // Coverage tap (observability only): which recovery paths fired.
    if (cov_) {
        switch (cause) {
          case SquashCause::Branch: cov_->set(kCovSquashBranch); break;
          case SquashCause::MemOrder: cov_->set(kCovSquashMemOrder); break;
          case SquashCause::Misintegration:
            cov_->set(kCovSquashMisint);
            break;
          case SquashCause::None: break;
        }
    }

    // Capture what we need from the boundary before it is destroyed
    // (include_boundary destroys it too).
    const BranchPrediction boundary_pred = boundary.pred;
    const Instruction boundary_inst = boundary.inst;
    const InstAddr boundary_pc = boundary.pc;
    const bool boundary_taken = boundary.actualTaken;

    // The trace drain fires while the retire stream is inside the
    // window; one flag test per squashed instruction when a sink is
    // attached, nothing otherwise.
    const bool tracing = trace_ && traceArmed();

    while (!rob.empty() && pool.get(rob.back()).seq > bseq) {
        DynInst &victim = pool.get(rob.back());
        undoRename(victim);
        if (tracing) {
            victim.squashCause = cause;
            traceSquashed(victim, cause);
        }
        ++stats_.squashedInsts;
        pool.release(rob.pop_back());
    }

    stats_.squashedInsts += fetchQueue.size();
    while (!fetchQueue.empty()) {
        if (tracing) {
            DynInst &victim = pool.get(fetchQueue.front());
            victim.squashCause = cause;
            traceSquashed(victim, cause);
        }
        pool.release(fetchQueue.pop_front());
    }

    while (!sq.empty() && sq.back().seq > bseq)
        sq.pop_back();
    while (!lq.empty() && lq.back().seq > bseq)
        lq.pop_back();

    // Front-end repair: restore to before the boundary instruction,
    // then (when it survives) re-apply its own effect with the actual
    // outcome.
    bpred.repairBefore(boundary_pred);
    if (!include_boundary)
        bpred.applyOutcome(boundary_inst, boundary_pc, boundary_taken);

    fetchPc = new_pc;
    fetchStallUntil = cycle + penalty;
}

bool
Core::divaCheck(const DynInst &di, const StepResult &expected) const
{
    const Instruction &inst = di.inst;
    if (inst.isNop() || inst.isHalt())
        return true;
    if (di.hasDest && pregValue[di.pdest] != expected.destValue)
        return false;
    if (di.isStore() &&
        (di.effAddr != expected.memAddr ||
         di.storeData != expected.destValue))
        return false;
    if (di.isLoad() && !di.integrated && di.effAddr != expected.memAddr)
        return false;
    if (di.isCtrl && di.actualNextPc() != expected.nextPc)
        return false;
    return true;
}

void
Core::handleMisintegration(DynInst &di)
{
    if (getenv("RIX_TRACE_MISINT"))
        fprintf(stderr, "misint seq=%llu pc=%llu %s\n",
                (unsigned long long)di.seq, (unsigned long long)di.pc,
                disassemble(di.inst).c_str());
    ++stats_.misintegrations;
    if (di.isLoad())
        ++stats_.misintLoads;
    else if (di.inst.isCondBranch())
        ++stats_.misintBranches;
    else
        ++stats_.misintRegisters;
    if (cov_)
        cov_->set(di.isLoad() ? kCovMisintLoad
                  : di.inst.isCondBranch() ? kCovMisintBranch
                                           : kCovMisintRegister);

    if (di.isLoad() && p.integ.lisp == LispMode::Realistic) {
        integ.lisp().trainMisintegration(di.pc);
        if (cov_)
            cov_->set(kCovLispTrain);
    }

    // The matched entry produced a wrong result; kill it so the
    // re-fetched instruction cannot re-integrate it (guarantees
    // forward progress even with suppression disabled).
    integ.table().invalidate(di.sourceEntry);

    ++stats_.squashesMisint;
    // Complete flush including the offender; monolithic recovery.
    squashFrom(di, /*include_boundary=*/true, di.pc, p.misintPenalty + 1,
               SquashCause::Misintegration);
}

void
Core::recordRetireStats(const DynInst &di)
{
    ++stats_.retired;
    const Instruction &inst = di.inst;
    if (inst.isLoad()) {
        ++stats_.retiredLoads;
        if (inst.ra == regSp) {
            ++stats_.retiredSpLoads;
            if (cov_)
                cov_->set(kCovRetireSpLoad);
        }
    } else if (inst.isStore()) {
        ++stats_.retiredStores;
    } else if (inst.isCondBranch()) {
        ++stats_.retiredBranches;
    }

    if (!di.integrated)
        return;

    const unsigned r = di.reverseIntegrated ? 1 : 0;
    if (r)
        ++stats_.integratedReverse;
    else
        ++stats_.integratedDirect;

    // Type breakdown (Figure 5 "Type").
    unsigned type;
    if (inst.isLoad())
        type = inst.ra == regSp ? 0 : 1;
    else if (inst.isCondBranch())
        type = 3;
    else if (inst.cls() == InstClass::FloatOp)
        type = 4;
    else
        type = 2;
    ++stats_.integByType[type][r];

    // Distance breakdown (Figure 5 "Distance").
    const u64 dist = di.renameStreamPos > di.producerSeq
                         ? di.renameStreamPos - di.producerSeq
                         : 0;
    static const u64 bounds[5] = {4, 16, 64, 256, 1024};
    unsigned db = 5;
    for (unsigned i = 0; i < 5; ++i) {
        if (dist <= bounds[i]) {
            db = i;
            break;
        }
    }
    ++stats_.integByDistance[db][r];

    // Status breakdown (Figure 5 "Status").
    unsigned sb = 0;
    switch (di.integStatus) {
      case IntegStatus::Rename: sb = 0; break;
      case IntegStatus::Issue: sb = 1; break;
      case IntegStatus::Retire: sb = 2; break;
      case IntegStatus::ShadowSquash: sb = 3; break;
      case IntegStatus::None: sb = 2; break;
    }
    ++stats_.integByStatus[sb][r];

    // Reference-count breakdown (Figure 5 "Refcount"); branches carry
    // no register payload.
    if (di.refcountAfter > 0) {
        unsigned rb;
        if (di.refcountAfter == 1)
            rb = 0;
        else if (di.refcountAfter <= 3)
            rb = 1;
        else if (di.refcountAfter <= 7)
            rb = 2;
        else
            rb = 3;
        ++stats_.integByRefcount[rb][r];
        if (cov_)
            cov_->set(kCovIntegRefcount + rb * 2 + r);
    }

    // Coverage taps piggyback on the buckets the Figure-5 accounting
    // just computed: one discrete bit per (bucket, direct/reverse)
    // combination this run has exercised.
    if (cov_) {
        cov_->set(kCovIntegType + type * 2 + r);
        cov_->set(kCovIntegDistance + db * 2 + r);
        cov_->set(kCovIntegStatus + sb * 2 + r);
    }
}

void
Core::retireStage()
{
    for (unsigned w = 0; w < p.retireWidth; ++w) {
        if (stats_.retired >= retireStopAt)
            return; // exact interval boundary (see setRetireStop)
        if (rob.empty())
            return;
        DynInst &di = pool.get(rob.front());
        // DIVA + retire occupy the two in-order stages after writeback.
        if (!di.completed || di.completeCycle >= cycle)
            return;
        if (di.isStore() && writeBuffer.full()) {
            if (cov_)
                cov_->set(kCovRetireWbStall);
            return;
        }

        if (golden_.pc() != di.pc) {
            if (lockstep_) {
                lockstep_->recordStreamMismatch(di, golden_);
                stopDiverged();
                return;
            }
            rix_panic("retire stream diverged: pipeline pc=%llu golden "
                      "pc=%llu (%s)",
                      (unsigned long long)di.pc,
                      (unsigned long long)golden_.pc(),
                      disassemble(di.inst).c_str());
        }

        const StepResult expected = golden_.preview();
        if (!divaCheck(di, expected)) {
            if (!di.integrated) {
                // A wrong result on a non-integrated instruction is a
                // genuine execution bug. With the lockstep checker on
                // it becomes a structured divergence report (the fuzz
                // driver's raw material); without it, the historical
                // panic.
                if (lockstep_) {
                    lockstep_->recordValueMismatch(
                        di, expected, golden_,
                        di.hasDest ? pregValue[di.pdest] : 0);
                    stopDiverged();
                    return;
                }
                rix_panic("DIVA mismatch on non-integrated '%s' at pc "
                          "%llu (pipeline value %llu, expected %llu)",
                          disassemble(di.inst).c_str(),
                          (unsigned long long)di.pc,
                          (unsigned long long)(di.hasDest
                                                   ? pregValue[di.pdest]
                                                   : 0),
                          (unsigned long long)expected.destValue);
            }
            handleMisintegration(di);
            return;
        }

        golden_.commit(expected);
        if (golden_.faulted()) {
            // The retiring store landed in the immutable text segment:
            // a structured, contained per-job failure (the program is
            // faulty, not the simulator), reported like a watchdog
            // stop rather than a panic.
            stuckReason_ = golden_.fault().describe();
            stuck_ = true;
            done = true;
            if (cov_)
                cov_->set(kCovTextFault);
            return;
        }
        if (lockstep_ && !lockstep_->checkShadowStep(expected, golden_)) {
            stopDiverged();
            return;
        }
        lastProgressCycle = cycle;

        if (di.hasDest && di.oldDestValid)
            regState.releaseOverwrite(di.oldDest);

        if (di.isStore()) {
            if (sq.empty() || sq.front().seq != di.seq)
                rix_panic("SQ head mismatch at retire");
            writeBuffer.push(di.effAddr, cycle);
            sq.pop_front();
        } else if (di.isLoad() && di.lqIdx >= 0) {
            if (lq.empty() || lq.front().seq != di.seq)
                rix_panic("LQ head mismatch at retire");
            if (di.speculativePastStore) {
                cht[di.pc & (cht.size() - 1)].decrement();
                if (cov_)
                    cov_->set(kCovRetireChtDecrement);
            }
            lq.pop_front();
        }

        if (di.isCtrl) {
            bpred.update(di.inst, di.pc, di.pred, di.actualTaken,
                         di.actualTarget);
            if (di.mispredicted) {
                ++stats_.retiredMispredicts;
                stats_.mispredResolveLatSum +=
                    di.completeCycle - di.fetchCycle;
                if (cov_)
                    cov_->set(kCovMispredictRetired);
            }
            if (cov_ && di.inst.isCondBranch())
                cov_->set(kCovBranchEdge + (di.pred.predTaken ? 2 : 0) +
                          (di.actualTaken ? 1 : 0));
        }

        recordRetireStats(di);
        if (trace_)
            traceRetired(di);

        const bool halt = di.inst.isHalt();
        pool.release(rob.pop_front());
        if (halt) {
            done = true;
            if (cov_)
                cov_->set(kCovRetireHalt);
            return;
        }
    }
}

} // namespace rix
