/**
 * @file
 * Out-of-order core configuration.
 *
 * Defaults reproduce the paper's section 3.1 baseline: 4-way
 * superscalar, 13-stage pipeline (3 fetch, 1 decode, 1 rename,
 * 2 schedule, 2 register read, 1 execute, 1 writeback, 1 DIVA,
 * 1 retire), 128 instructions / 64 memory operations in flight, 40
 * reservation stations issuing up to 4 per cycle (2 simple integer,
 * 2 FP-or-complex, 1 load, 1 store), load/branch/FP scheduling
 * priority with age tie-break, speculative load issue with a 256-entry
 * collision history table, 2-cycle store-to-load forwarding, 16-entry
 * write buffer, 1K physical registers.
 */

#ifndef RIX_CPU_PARAMS_HH
#define RIX_CPU_PARAMS_HH

#include "bpred/predictor.hh"
#include "core/params.hh"
#include "mem/hierarchy.hh"

namespace rix
{

/** Differential-verification knobs (spec key group "check"). */
struct CheckParams
{
    /**
     * Retire-time lockstep checking against an independent shadow
     * emulator: a divergence stops the core with a DivergenceReport
     * (Core::divergence()) instead of panicking. RIX_CHECK=1 forces
     * this on for every core in the process. Timing and statistics
     * are unaffected — the shadow is purely an observer.
     */
    bool lockstep = false;
};

struct CoreParams
{
    // Widths.
    unsigned fetchWidth = 4;
    unsigned renameWidth = 4;
    unsigned issueWidth = 4;
    unsigned retireWidth = 4;

    // Front-end depth (fetch + decode stages before rename).
    unsigned fetchStages = 3;
    unsigned decodeStages = 1;
    // Back-end in-order depth between rename and execute.
    unsigned schedStages = 2;
    unsigned regReadStages = 2;

    // Window.
    unsigned robSize = 128;
    unsigned maxMemOps = 64;   // LQ + SQ combined occupancy cap
    unsigned rsSize = 40;
    unsigned fetchQueueSize = 16;

    // Issue-port mix.
    unsigned simpleIntSlots = 2;
    unsigned complexSlots = 2; // FP or complex integer
    unsigned loadSlots = 1;
    unsigned storeSlots = 1;
    // Figure 7 "IW" configuration: loads and stores share one port
    // (storeSlots is ignored; both classes draw from loadSlots).
    bool sharedLoadStorePort = false;

    // Memory timing.
    unsigned agenLatency = 1;
    unsigned storeForwardLatency = 2;
    unsigned writeBufferEntries = 16;

    // Load speculation.
    unsigned chtEntries = 256;

    // Recovery.
    unsigned squashPenalty = 1;     // redirect bubble after a squash
    unsigned misintPenalty = 1;     // monolithic mis-integration recovery

    // Substrates.
    BranchPredictorParams bpred;
    MemHierarchyParams mem;
    IntegrationParams integ;

    // Differential verification (src/cpu/lockstep.hh).
    CheckParams check;

    // Safety net for simulator debugging.
    u64 watchdogCycles = 200000;

    unsigned
    frontLatency() const
    {
        return fetchStages + decodeStages;
    }

    unsigned
    issueDelay() const
    {
        return schedStages + regReadStages;
    }
};

} // namespace rix

#endif // RIX_CPU_PARAMS_HH
