/**
 * @file
 * The out-of-order, 13-stage, 4-way superscalar core with register
 * integration (paper section 3.1 machine).
 *
 * Pipeline organization (stage latencies are modeled with timestamps,
 * not per-stage latches; the in-order front end and back end charge
 * their configured depths):
 *
 *   fetch(3) -> decode(1) -> rename+integrate(1) -> schedule(2) ->
 *   regread(2) -> execute(1+) -> writeback(1) -> DIVA(1) -> retire(1)
 *
 * Integrating instructions bypass schedule/regread/execute/writeback
 * entirely: they complete at rename as soon as their integrated
 * register's value is ready.
 *
 * Wrong paths are genuinely executed: fetch follows the predictors,
 * wrong-path instructions allocate registers and compute values, and
 * squash recovery walks the ROB restoring the map table, reference
 * counts and front-end state — which is what makes squash reuse (and
 * its 0/T vs 0/F deadlock rule) observable.
 *
 * The DIVA checker is the in-order golden emulator: every retiring
 * instruction is re-executed architecturally and compared. For
 * integrated instructions a mismatch is a mis-integration (full flush,
 * LISP training); for anything else it is a simulator invariant
 * violation and panics.
 */

#ifndef RIX_CPU_CORE_HH
#define RIX_CPU_CORE_HH

#include <array>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "base/cancel.hh"
#include "core/integration.hh"
#include "cpu/core_stats.hh"
#include "cpu/dyn_inst.hh"
#include "cpu/dyn_inst_pool.hh"
#include "cpu/lockstep.hh"
#include "cpu/params.hh"
#include "emu/emulator.hh"
#include "mem/write_buffer.hh"

namespace rix
{

class TraceSink;
class MetricsRecorder;
class CoverageMap;

class Core
{
  public:
    Core(const Program &prog, const CoreParams &params);

    /**
     * Rebind to a new program/configuration and return to the
     * power-on state, producing bit-identical simulations to a
     * freshly constructed Core. The expensive long-lived storage —
     * instruction-pool slabs, sparse-memory pages, integration-table
     * lanes, cache/predictor arrays — is reused instead of being
     * reallocated, which is what makes a per-worker core context
     * cheap to recycle across sweep jobs.
     */
    void reset(const Program &prog, const CoreParams &params);

    /**
     * Reset as above, but resume from the architectural checkpoint
     * @p from (taken on @p prog): the restored emulator becomes the
     * DIVA golden state, fetch starts at the checkpoint PC, and the
     * detailed simulation retires exactly the architectural stream
     * from that point on. Statistics start at zero. A checkpoint
     * taken at/after HALT yields an immediately-done core.
     */
    void reset(const Program &prog, const CoreParams &params,
               const Checkpoint &from);

    struct RunResult
    {
        u64 retired = 0;
        Cycle cycles = 0;
        bool halted = false;
    };

    /** Advance one cycle. */
    void tick();

    /** Run until HALT retires or a limit is hit. Note run() is a stop
     *  *condition* checked between cycles: the final cycle can retire
     *  up to retire-width instructions past @p max_retired. */
    RunResult run(u64 max_retired = ~u64(0), Cycle max_cycles = ~Cycle(0));

    /**
     * Hard retirement boundary: retireStage() never retires the
     * instruction that would make the retired count exceed
     * @p absolute_retired (counted since reset). The sampled-interval
     * driver uses this so warmup and measure windows end *exactly* on
     * their budgets — adjacent intervals never double-count the
     * stream through multi-wide retirement overshoot. Cleared (no
     * boundary) by reset().
     */
    void setRetireStop(u64 absolute_retired)
    {
        retireStopAt = absolute_retired;
    }

    bool halted() const { return done && !diverged_ && !stuck_; }
    Cycle now() const { return cycle; }
    const CoreStats &stats() const { return stats_; }
    const CoreParams &params() const { return p; }

    /** Committed architectural state (the DIVA golden model). */
    const Emulator &golden() const { return golden_; }

    /**
     * True when this core carries a lockstep checker (configured via
     * CoreParams::check.lockstep or the RIX_CHECK=1 environment knob,
     * re-evaluated at every reset).
     */
    bool lockstepEnabled() const { return lockstep_ != nullptr; }

    /**
     * Non-null after lockstep checking detected a divergence: the run
     * stopped at the offending instruction (halted() stays false) and
     * the report carries the architectural position, disassembly,
     * mismatching values and both architectural states. Always null
     * when lockstep checking is off — without it a divergence is a
     * panic, exactly the historical behaviour.
     */
    const DivergenceReport *
    divergence() const
    {
        return lockstep_ && lockstep_->diverged() ? &lockstep_->report()
                                                  : nullptr;
    }

    /**
     * Attach a cooperative cancellation token polled by run() (every
     * 1024 cycles, so the only cost when unset is one pointer test
     * per cycle batch). When the token fires, run() stops between
     * cycles with cancelled() reporting why; the core's state remains
     * consistent (mid-run, not halted). Cleared by reset().
     */
    void setCancelToken(const CancelToken *token) { cancel_ = token; }

    /** Why run() stopped early, or CancelReason::None. */
    CancelReason cancelled() const { return cancelled_; }

    /**
     * True after the forward-progress watchdog tripped: no instruction
     * retired for watchdogCycles cycles (a stuck simulation — e.g. a
     * scheduling deadlock or a wrong-path livelock). The run stops
     * (halted() stays false) instead of panicking, so a stuck job is
     * a reportable per-job failure rather than process death.
     */
    bool stuck() const { return stuck_; }
    const std::string &stuckReason() const { return stuckReason_; }

    /** The lockstep shadow emulator (tests); null when disabled. */
    const Emulator *
    shadowEmulator() const
    {
        return lockstep_ ? &lockstep_->shadow() : nullptr;
    }

    IntegrationEngine &integration() { return integ; }
    RegStateVector &regStateVector() { return regState; }
    MemHierarchy &memHierarchy() { return mem; }
    BranchPredictorUnit &branchPredictor() { return bpred; }

    /**
     * Attach a pipeline-trace sink (not owned; null detaches): every
     * instruction leaving the pipeline while the retired count is in
     * [start, start+count) — retired at the ROB head or squashed on a
     * recovery walk — is emitted as one TraceEvent. Observability
     * only: simulated state and every CoreStats field are
     * bit-identical with or without a sink. Cleared by reset().
     */
    void setTraceSink(TraceSink *sink, u64 start, u64 count);

    /**
     * Attach a microarchitectural coverage map (not owned; null
     * detaches): the rename/retire/squash taps set discrete event
     * bits in it as the simulation runs. Observability only — the
     * same zero-overhead discipline as tracing: one pointer test at
     * each tap when detached, and simulated state plus every
     * CoreStats field are bit-identical either way. Cleared by
     * reset().
     */
    void setCoverage(CoverageMap *map) { cov_ = map; }

    /**
     * Attach an interval-metrics recorder (not owned; null detaches):
     * run() closes one CoreStats-delta interval every
     * recorder->every() cycles and a final partial interval when it
     * stops. begin() is called here, so the series starts at the
     * current counters. Cleared by reset().
     */
    void setMetrics(MetricsRecorder *recorder);

    /** In-flight instruction count (tests). */
    size_t robOccupancy() const { return rob.size(); }
    unsigned rsOccupancy() const { return rsBusy; }

  private:
    struct Mapping
    {
        PhysReg preg = invalidPhysReg;
        u8 gen = 0;
    };

    /** Validated reference to a pooled instruction: live iff the pool
     *  slot still carries the same sequence number. */
    struct InstRef
    {
        InstHandle h = invalidInstHandle;
        InstSeqNum seq = 0;
    };

    struct SqEntry
    {
        InstSeqNum seq = 0;
        InstHandle owner = invalidInstHandle;
        Addr addr = 0;
        unsigned size = 0;
        u64 data = 0;
        bool resolved = false;
    };

    struct LqEntry
    {
        InstSeqNum seq = 0;
        InstHandle owner = invalidInstHandle;
        Addr addr = 0;
        unsigned size = 0;
        bool resolved = false;
        InstSeqNum forwardedFrom = 0; // 0: memory/cache
    };

    // ---- pipeline stages (called youngest-last each cycle) ----
    void retireStage();
    void writebackStage();
    void issueStage();
    void renameStage();
    void fetchStage();

    // ---- rename helpers ----
    bool renameOne(InstHandle h);
    Mapping lookupMap(LogReg r) const;
    bool oracleWouldMisintegrate(const DynInst &di,
                                 const IntegrationResult &res) const;
    void applyIntegration(DynInst &di, const IntegrationResult &res);
    void finishRenameCommon(DynInst &di);

    // ---- execute helpers ----
    /** Issue-readiness check with wakeup registration: a candidate
     *  blocked on a source register parks itself on that register's
     *  waiter list (and leaves the scannable RS list) until writeback
     *  wakes it; retry-backoff and CHT-blocked candidates return
     *  false without parking and are re-polled. */
    bool checkReadyOrPark(DynInst &di);
    void wakeOperandWaiters(PhysReg preg);
    void executeAlu(DynInst &di);
    bool executeLoad(DynInst &di);
    void executeStore(DynInst &di);
    void scheduleCompletion(DynInst &di, Cycle when);
    void completeNow(DynInst &di, Cycle when);
    void resolveControl(DynInst &di);
    u64 memReadOverlay(Addr addr, unsigned size, InstSeqNum before) const;
    void checkStoreViolation(DynInst &store_inst);

    // ---- recovery ----
    /**
     * Squash every instruction younger than @p boundary (or including
     * it when @p include_boundary); restore map/refcounts/front-end;
     * redirect fetch to @p new_pc after @p penalty cycles.
     */
    void squashFrom(DynInst &boundary, bool include_boundary,
                    InstAddr new_pc, unsigned penalty, SquashCause cause);
    void undoRename(DynInst &di);

    // ---- retire helpers ----
    bool divaCheck(const DynInst &di, const StepResult &expected) const;
    void handleMisintegration(DynInst &di);
    void recordRetireStats(const DynInst &di);

    // ---- observability taps (out-of-line; cold unless attached) ----
    void traceRetired(const DynInst &di);
    void traceSquashed(const DynInst &di, SquashCause cause);
    bool
    traceArmed() const
    {
        return stats_.retired >= traceStart_ && stats_.retired < traceEnd_;
    }
    void sampleMetrics();

    u64 readReg(PhysReg r) const { return pregValue[r]; }

    /** ROB entry with sequence number @p seq, or nullptr (binary
     *  search over the in-order ROB ring; no hash map). */
    const DynInst *findInst(InstSeqNum seq) const;
    DynInst *
    findInst(InstSeqNum seq)
    {
        return const_cast<DynInst *>(
            static_cast<const Core *>(this)->findInst(seq));
    }

    /** Everything reset() does except the golden-state (re)binding —
     *  shared by the fresh and from-checkpoint paths. */
    void resetMicroarch(const Program &prog, const CoreParams &params);

    /** (De)activate the lockstep checker per the current params/env
     *  and seed its shadow emulator (from @p from when resuming a
     *  checkpoint, else from the program start). */
    void resetLockstep(const Checkpoint *from);

    /** Stop the run after the lockstep checker recorded a divergence. */
    void
    stopDiverged()
    {
        diverged_ = true;
        done = true;
    }

    /** Shared tail of construction and reset(): pin the zero register,
     *  map the architectural registers from the golden state, point
     *  fetch at its PC. */
    void initArchState();

    // ---- configuration & substrates ----
    const Program *prog; // never null; rebindable via reset()
    // The program's pre-decoded form: fetch hands each DynInst a
    // pointer into it, and the pipeline stages read port/latency/
    // operand metadata from there instead of re-deriving traits.
    // Held unconditionally (RIX_DECODE gates only the Emulator's
    // execution loop, not the pipeline's metadata source).
    std::shared_ptr<const DecodedProgram> deco_;
    CoreParams p;
    Emulator golden_;
    // Null when lockstep checking is off: the only hot-path cost of
    // the disabled checker is a pointer test per retired instruction.
    std::unique_ptr<LockstepChecker> lockstep_;
    MemHierarchy mem;
    BranchPredictorUnit bpred;
    RegStateVector regState;
    IntegrationEngine integ;
    WriteBuffer writeBuffer;
    std::vector<SatCounter> cht;

    // ---- register state ----
    std::vector<u64> pregValue;
    std::array<Mapping, numLogRegs> map;
    PhysReg zeroPreg = invalidPhysReg;

    // ---- windows ----
    // In-flight instructions live in the slab pool; the fetch queue
    // and ROB are rings of handles into it (no per-inst heap traffic).
    DynInstPool pool;
    HandleRing fetchQueue;
    HandleRing rob;
    std::deque<SqEntry> sq;
    std::deque<LqEntry> lq;
    unsigned rsBusy = 0;

    // ---- event plumbing ----
    // Min-heap ordered by (cycle, seq): pops oldest-first within a
    // cycle and reuses its backing storage instead of allocating map
    // nodes. Events carry a validated handle so firing one is O(1)
    // (no ROB search). Note the deliberate tie-break: same-cycle
    // events fire in age order (the seed's multimap fired them in
    // scheduling order), so e.g. the older of two branches resolving
    // in one cycle squashes the younger before it can resolve —
    // deterministic, and squash/mispredict stats can differ from the
    // seed in exactly these tie cases while cycle counts do not.
    struct CompletionEvent
    {
        Cycle when = 0;
        InstSeqNum seq = 0;
        InstHandle h = invalidInstHandle;
        bool
        operator>(const CompletionEvent &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };
    std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                        std::greater<CompletionEvent>>
        completionEvents;
    // Indexed by physical register; inner vectors are cleared (capacity
    // kept) when drained.
    std::vector<std::vector<InstRef>> integWaiters;
    // RS instructions parked until a source register becomes ready
    // (same indexing/validation discipline as integWaiters).
    std::vector<std::vector<InstRef>> operandWaiters;
    // Issue-candidate scratch, reused every cycle.
    std::vector<InstRef> issuePrio, issueRest;
    // Scannable reservation-station occupants in age order. Entries
    // are seq-validated against the pool (squash/issue leaves stale
    // pairs behind) and compacted during the per-cycle scan, so issue
    // selection is O(RS) instead of O(ROB). Instructions parked on an
    // operand are *removed* from this list (they live only on their
    // register's waiter list) and merged back, still age-ordered, on
    // wakeup — the scheduler never re-polls a parked instruction.
    std::vector<InstRef> rsList;
    std::vector<InstRef> wokenList; // woken this cycle, pending merge
    std::vector<InstRef> rsScratch; // merge buffer, reused

    // ---- fetch state ----
    InstAddr fetchPc = 0;
    Cycle fetchStallUntil = 0;

    // ---- issue state ----
    // Oldest unresolved store-queue seq, recomputed once per issue
    // cycle (sq cannot change during candidate collection) so the
    // per-load collision check is O(1) instead of an SQ scan.
    InstSeqNum oldestUnresolvedStore = ~InstSeqNum(0);

    // ---- bookkeeping ----
    u64 retireStopAt = ~u64(0);
    InstSeqNum nextSeq = 1;
    u64 renameStreamPos = 0;
    Cycle cycle = 0;
    bool done = false;
    bool diverged_ = false;
    bool stuck_ = false;
    std::string stuckReason_;
    const CancelToken *cancel_ = nullptr;
    CancelReason cancelled_ = CancelReason::None;
    Cycle lastProgressCycle = 0;
    CoreStats stats_;

    // ---- observability (PR 9) ----
    // Null when off — the same discipline as lockstep_: the only
    // hot-path cost of the disabled tracer is one pointer test per
    // retiring/squashed instruction, and of disabled metrics one
    // pointer test per cycle in run(). Neither ever feeds back into
    // simulated state.
    TraceSink *trace_ = nullptr;
    u64 traceStart_ = 0;
    u64 traceEnd_ = 0; // exclusive; 0 with trace_ null
    MetricsRecorder *metrics_ = nullptr;
    Cycle metricsNext_ = ~Cycle(0);
    CoverageMap *cov_ = nullptr;
};

} // namespace rix

#endif // RIX_CPU_CORE_HH
