/**
 * @file
 * The out-of-order, 13-stage, 4-way superscalar core with register
 * integration (paper section 3.1 machine).
 *
 * Pipeline organization (stage latencies are modeled with timestamps,
 * not per-stage latches; the in-order front end and back end charge
 * their configured depths):
 *
 *   fetch(3) -> decode(1) -> rename+integrate(1) -> schedule(2) ->
 *   regread(2) -> execute(1+) -> writeback(1) -> DIVA(1) -> retire(1)
 *
 * Integrating instructions bypass schedule/regread/execute/writeback
 * entirely: they complete at rename as soon as their integrated
 * register's value is ready.
 *
 * Wrong paths are genuinely executed: fetch follows the predictors,
 * wrong-path instructions allocate registers and compute values, and
 * squash recovery walks the ROB restoring the map table, reference
 * counts and front-end state — which is what makes squash reuse (and
 * its 0/T vs 0/F deadlock rule) observable.
 *
 * The DIVA checker is the in-order golden emulator: every retiring
 * instruction is re-executed architecturally and compared. For
 * integrated instructions a mismatch is a mis-integration (full flush,
 * LISP training); for anything else it is a simulator invariant
 * violation and panics.
 */

#ifndef RIX_CPU_CORE_HH
#define RIX_CPU_CORE_HH

#include <array>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/integration.hh"
#include "cpu/core_stats.hh"
#include "cpu/dyn_inst.hh"
#include "cpu/params.hh"
#include "emu/emulator.hh"
#include "mem/write_buffer.hh"

namespace rix
{

class Core
{
  public:
    Core(const Program &prog, const CoreParams &params);

    struct RunResult
    {
        u64 retired = 0;
        Cycle cycles = 0;
        bool halted = false;
    };

    /** Advance one cycle. */
    void tick();

    /** Run until HALT retires or a limit is hit. */
    RunResult run(u64 max_retired = ~u64(0), Cycle max_cycles = ~Cycle(0));

    bool halted() const { return done; }
    Cycle now() const { return cycle; }
    const CoreStats &stats() const { return stats_; }
    const CoreParams &params() const { return p; }

    /** Committed architectural state (the DIVA golden model). */
    const Emulator &golden() const { return golden_; }

    IntegrationEngine &integration() { return integ; }
    RegStateVector &regStateVector() { return regState; }
    MemHierarchy &memHierarchy() { return mem; }
    BranchPredictorUnit &branchPredictor() { return bpred; }

    /** In-flight instruction count (tests). */
    size_t robOccupancy() const { return rob.size(); }
    unsigned rsOccupancy() const { return rsBusy; }

  private:
    struct Mapping
    {
        PhysReg preg = invalidPhysReg;
        u8 gen = 0;
    };

    struct SqEntry
    {
        InstSeqNum seq = 0;
        Addr addr = 0;
        unsigned size = 0;
        u64 data = 0;
        bool resolved = false;
    };

    struct LqEntry
    {
        InstSeqNum seq = 0;
        Addr addr = 0;
        unsigned size = 0;
        bool resolved = false;
        InstSeqNum forwardedFrom = 0; // 0: memory/cache
    };

    // ---- pipeline stages (called youngest-last each cycle) ----
    void retireStage();
    void writebackStage();
    void issueStage();
    void renameStage();
    void fetchStage();

    // ---- rename helpers ----
    bool renameOne(std::unique_ptr<DynInst> &inst_ptr);
    Mapping lookupMap(LogReg r) const;
    bool oracleWouldMisintegrate(const DynInst &di,
                                 const IntegrationResult &res) const;
    void applyIntegration(DynInst &di, const IntegrationResult &res);
    void finishRenameCommon(DynInst &di);

    // ---- execute helpers ----
    bool operandsReady(const DynInst &di) const;
    void executeAlu(DynInst &di);
    bool executeLoad(DynInst &di);
    void executeStore(DynInst &di);
    void scheduleCompletion(DynInst &di, Cycle when);
    void completeNow(DynInst &di, Cycle when);
    void resolveControl(DynInst &di);
    u64 memReadOverlay(Addr addr, unsigned size, InstSeqNum before) const;
    u64 loadResult(const Instruction &inst, u64 raw) const;
    void checkStoreViolation(DynInst &store_inst);

    // ---- recovery ----
    /**
     * Squash every instruction younger than @p boundary (or including
     * it when @p include_boundary); restore map/refcounts/front-end;
     * redirect fetch to @p new_pc after @p penalty cycles.
     */
    void squashFrom(DynInst &boundary, bool include_boundary,
                    InstAddr new_pc, unsigned penalty);
    void undoRename(DynInst &di);

    // ---- retire helpers ----
    bool divaCheck(const DynInst &di, const StepResult &expected) const;
    void handleMisintegration(DynInst &di);
    void recordRetireStats(const DynInst &di);

    u64 readReg(PhysReg r) const { return pregValue[r]; }

    DynInst *findInst(InstSeqNum seq);

    // ---- configuration & substrates ----
    const Program &prog;
    const CoreParams p;
    Emulator golden_;
    MemHierarchy mem;
    BranchPredictorUnit bpred;
    RegStateVector regState;
    IntegrationEngine integ;
    WriteBuffer writeBuffer;
    std::vector<SatCounter> cht;

    // ---- register state ----
    std::vector<u64> pregValue;
    std::array<Mapping, numLogRegs> map;
    PhysReg zeroPreg = invalidPhysReg;

    // ---- windows ----
    std::deque<std::unique_ptr<DynInst>> fetchQueue;
    std::deque<std::unique_ptr<DynInst>> rob;
    std::unordered_map<InstSeqNum, DynInst *> robIndex;
    std::deque<SqEntry> sq;
    std::deque<LqEntry> lq;
    unsigned rsBusy = 0;

    // ---- event plumbing ----
    std::multimap<Cycle, InstSeqNum> completionEvents;
    std::unordered_map<PhysReg, std::vector<InstSeqNum>> integWaiters;

    // ---- fetch state ----
    InstAddr fetchPc = 0;
    Cycle fetchStallUntil = 0;

    // ---- bookkeeping ----
    InstSeqNum nextSeq = 1;
    u64 renameStreamPos = 0;
    Cycle cycle = 0;
    bool done = false;
    Cycle lastProgressCycle = 0;
    CoreStats stats_;
};

} // namespace rix

#endif // RIX_CPU_CORE_HH
