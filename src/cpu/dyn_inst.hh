/**
 * @file
 * Dynamic (in-flight) instruction record: the unit tracked by the ROB,
 * reservation stations, load/store queues, and the integration stats.
 */

#ifndef RIX_CPU_DYN_INST_HH
#define RIX_CPU_DYN_INST_HH

#include "bpred/predictor.hh"
#include "core/integration_table.hh"
#include "isa/decoded.hh"
#include "isa/inst.hh"

namespace rix
{

/** Why an in-flight instruction was squashed (pipeline-trace tap). */
enum class SquashCause : u8
{
    None,           // not squashed (retired)
    Branch,         // control misprediction (rename-time or execute-time)
    MemOrder,       // load/store ordering violation replay
    Misintegration, // DIVA-caught wrong integrated result, full flush
};

const char *squashCauseName(SquashCause cause);

/** Producer status observed when an instruction integrated (Figure 5). */
enum class IntegStatus : u8
{
    None,
    Rename,        // producer renamed but not yet issued
    Issue,         // producer issued (possibly completed, not retired)
    Retire,        // producer retired, mapping still live
    ShadowSquash,  // result was unmapped (refcount 0) at integration
};

/**
 * Fields are laid out for the per-cycle issue scan, not by pipeline
 * stage: everything the scheduler reads while deciding whether this
 * instruction can issue (seq validation, eligibility cycles, source
 * registers, status flags) packs into the first 64 bytes, so scanning
 * a reservation-station candidate touches one cache line. The record
 * is reset and recycled once per fetched instruction, so total
 * footprint is hot-loop traffic too.
 */
struct DynInst
{
    // ---- first cache line: issue-scan state ----
    InstSeqNum seq = 0;
    Cycle earliestIssue = 0;
    Cycle retryCycle = 0;       // LSQ retry backoff
    InstAddr pc = 0;            // identity; also the CHT index
    PhysReg psrc1 = invalidPhysReg, psrc2 = invalidPhysReg;
    PhysReg pdest = invalidPhysReg;
    PhysReg oldDest = invalidPhysReg; // previous mapping of dest lreg
    u8 gsrc1 = 0, gsrc2 = 0;
    u8 gdest = 0;
    u8 oldDestGen = 0;
    u8 refcountAfter = 0;       // reference count after the increment
    IntegStatus integStatus = IntegStatus::None;
    // Rename.
    bool renamed = false;
    bool hasSrc1 = false, hasSrc2 = false;
    bool hasDest = false;
    bool oldDestValid = false;
    // Integration.
    bool integrated = false;
    bool reverseIntegrated = false;
    // Execution state.
    bool needsRs = false;
    bool inRs = false;
    bool issued = false;
    bool completed = false;
    bool waitingOperand = false; // parked on an operand-waiter list
    // Control outcome.
    bool isCtrl = false;
    bool resolved = false;
    bool actualTaken = false;
    bool mispredicted = false;
    // Memory.
    bool addrValid = false;
    bool speculativePastStore = false;

    // ---- remaining state ----
    Instruction inst;
    // Pre-decoded metadata for this static instruction, set at fetch
    // alongside inst; points into the program's shared DecodedProgram
    // (kept alive by Core::deco_). Never null once fetched.
    const DecodedInst *dec = nullptr;
    Cycle fetchCycle = 0;
    Cycle renameReadyCycle = 0; // exits decode; eligible for rename
    Cycle renameCycle = 0;
    u64 producerSeq = 0;        // creator's rename-stream position
    u64 renameStreamPos = 0;    // own rename-stream position
    Cycle issueCycle = 0;
    Cycle completeCycle = 0;
    InstAddr actualTarget = 0;  // next PC when taken
    Addr effAddr = 0;
    u64 storeData = 0;

    BranchPrediction pred;
    ITHandle createdEntry;      // branch-outcome entry this inst created
    ITHandle sourceEntry;       // entry this inst integrated from

    u32 selfHandle = ~u32(0);   // own pool handle, set at allocation
    int lqIdx = -1, sqIdx = -1; // -1: no queue entry (integrated loads!)

    // Stamped by squashFrom on the recovery walk, read only by the
    // pipeline-trace drain (never by simulation logic).
    SquashCause squashCause = SquashCause::None;

    bool isLoad() const { return inst.isLoad(); }
    bool isStore() const { return inst.isStore(); }

    /** Next PC this instruction actually produces. */
    InstAddr
    actualNextPc() const
    {
        return (isCtrl && actualTaken) ? actualTarget : pc + 1;
    }

    /** Predicted next PC recorded at fetch. */
    InstAddr
    predictedNextPc() const
    {
        return (pred.isControl && pred.predTaken) ? pred.predTarget
                                                  : pc + 1;
    }
};

} // namespace rix

#endif // RIX_CPU_DYN_INST_HH
