/**
 * @file
 * Dynamic (in-flight) instruction record: the unit tracked by the ROB,
 * reservation stations, load/store queues, and the integration stats.
 */

#ifndef RIX_CPU_DYN_INST_HH
#define RIX_CPU_DYN_INST_HH

#include "bpred/predictor.hh"
#include "core/integration_table.hh"
#include "isa/inst.hh"

namespace rix
{

/** Producer status observed when an instruction integrated (Figure 5). */
enum class IntegStatus : u8
{
    None,
    Rename,        // producer renamed but not yet issued
    Issue,         // producer issued (possibly completed, not retired)
    Retire,        // producer retired, mapping still live
    ShadowSquash,  // result was unmapped (refcount 0) at integration
};

struct DynInst
{
    // Identity.
    InstSeqNum seq = 0;
    InstAddr pc = 0;
    Instruction inst;

    // Front end.
    BranchPrediction pred;
    Cycle fetchCycle = 0;
    Cycle renameReadyCycle = 0; // exits decode; eligible for rename

    // Rename.
    bool renamed = false;
    bool hasSrc1 = false, hasSrc2 = false;
    PhysReg psrc1 = invalidPhysReg, psrc2 = invalidPhysReg;
    u8 gsrc1 = 0, gsrc2 = 0;
    bool hasDest = false;
    PhysReg pdest = invalidPhysReg;
    u8 gdest = 0;
    PhysReg oldDest = invalidPhysReg; // previous mapping of dest lreg
    u8 oldDestGen = 0;
    bool oldDestValid = false;
    Cycle renameCycle = 0;

    // Integration.
    bool integrated = false;
    bool reverseIntegrated = false;
    IntegStatus integStatus = IntegStatus::None;
    u8 refcountAfter = 0;       // reference count after the increment
    u64 producerSeq = 0;        // creator's rename-stream position
    u64 renameStreamPos = 0;    // own rename-stream position
    ITHandle createdEntry;      // branch-outcome entry this inst created
    ITHandle sourceEntry;       // entry this inst integrated from

    // Execution state.
    bool needsRs = false;
    bool inRs = false;
    bool issued = false;
    bool completed = false;
    Cycle earliestIssue = 0;
    Cycle retryCycle = 0;       // LSQ retry backoff
    Cycle issueCycle = 0;
    Cycle completeCycle = 0;

    // Control outcome.
    bool isCtrl = false;
    bool resolved = false;
    bool actualTaken = false;
    InstAddr actualTarget = 0;  // next PC when taken
    bool mispredicted = false;

    // Memory.
    int lqIdx = -1, sqIdx = -1; // -1: no queue entry (integrated loads!)
    bool addrValid = false;
    Addr effAddr = 0;
    u64 storeData = 0;
    bool speculativePastStore = false;

    bool isLoad() const { return inst.isLoad(); }
    bool isStore() const { return inst.isStore(); }

    /** Next PC this instruction actually produces. */
    InstAddr
    actualNextPc() const
    {
        return (isCtrl && actualTaken) ? actualTarget : pc + 1;
    }

    /** Predicted next PC recorded at fetch. */
    InstAddr
    predictedNextPc() const
    {
        return (pred.isControl && pred.predTaken) ? pred.predTarget
                                                  : pc + 1;
    }
};

} // namespace rix

#endif // RIX_CPU_DYN_INST_HH
