/**
 * @file
 * Slab allocator and ring buffers for in-flight instructions.
 *
 * The rename-rate of the simulator is gated by how fast DynInst
 * records can be produced and retired. The original pipeline paid one
 * heap allocation per fetched instruction plus a pointer chase per
 * window access (std::deque<std::unique_ptr<DynInst>>); here the
 * records live in fixed slabs that are never freed while the core is
 * alive, identified by dense 32-bit handles recycled through a free
 * list. After the first few thousand instructions the simulator's
 * fetch-to-retire loop performs no allocation at all.
 *
 * Slabs (not one growable array) keep every DynInst* stable: growing
 * the pool appends a slab instead of reallocating, so raw pointers
 * held across a grow (e.g. the instruction being renamed) stay valid.
 */

#ifndef RIX_CPU_DYN_INST_POOL_HH
#define RIX_CPU_DYN_INST_POOL_HH

#include <memory>
#include <vector>

#include "cpu/dyn_inst.hh"

namespace rix
{

/** Index-based reference to a pooled DynInst. */
using InstHandle = u32;
constexpr InstHandle invalidInstHandle = ~u32(0);

class DynInstPool
{
  public:
    static constexpr unsigned slabShift = 8;
    static constexpr unsigned slabInsts = 1u << slabShift; // 256/slab

    /** @p reserve in-flight instructions are pre-materialized. */
    explicit DynInstPool(size_t reserve = 0) { reset(reserve); }

    /** Fresh (default-initialized) record. Never fails: the pool grows
     *  by whole slabs when the free list runs dry. */
    InstHandle
    alloc()
    {
        if (freeList.empty())
            activateSlab();
        const InstHandle h = freeList.back();
        freeList.pop_back();
        DynInst &di = get(h);
        di = DynInst{};
        di.selfHandle = h;
        ++inUse_;
        return h;
    }

    /** Recycle a record. The handle must come from alloc() and must
     *  not be released twice. The slot's sequence number is zeroed so
     *  any stale (handle, seq) reference held by an event queue or
     *  waiter list fails its validation immediately — not just after
     *  the slot is reused. */
    void
    release(InstHandle h)
    {
        get(h).seq = 0;
        freeList.push_back(h);
        --inUse_;
    }

    DynInst &
    get(InstHandle h)
    {
        return slabs[h >> slabShift][h & (slabInsts - 1)];
    }

    const DynInst &
    get(InstHandle h) const
    {
        return slabs[h >> slabShift][h & (slabInsts - 1)];
    }

    size_t capacity() const { return slabs.size() * slabInsts; }
    size_t inUse() const { return inUse_; }

    /**
     * Return to the freshly-constructed state while keeping every
     * already-materialized slab's storage. Only the slabs a fresh
     * pool of this reserve would have materialized are put back on
     * the free list; retained extra slabs are re-activated lazily in
     * the same order alloc() would have created them — so the handle
     * sequence handed out after a reset is identical to a brand-new
     * pool's in every case, and reusing a context cannot perturb
     * handle assignment. Any outstanding handles are invalidated (the
     * caller must have dropped its references).
     */
    void
    reset(size_t reserve = 0)
    {
        // Zero every retained slot's seq so stale (handle, seq) pairs
        // held anywhere fail validation immediately.
        for (auto &slab : slabs)
            for (unsigned i = 0; i < slabInsts; ++i)
                slab[i].seq = 0;
        freeList.clear();
        activeSlabs = 0;
        while (activeSlabs * slabInsts < reserve)
            activateSlab();
        inUse_ = 0;
    }

  private:
    /** Put the next slab's handles on the free list, materializing it
     *  only when no retained (post-reset) slab is available. */
    void
    activateSlab()
    {
        if (activeSlabs == slabs.size())
            slabs.push_back(std::make_unique<DynInst[]>(slabInsts));
        const InstHandle base = InstHandle(activeSlabs * slabInsts);
        // Stack the slab's handles so the lowest index comes out
        // first (purely cosmetic: keeps handles dense in traces).
        for (unsigned i = slabInsts; i-- > 0;)
            freeList.push_back(base + i);
        ++activeSlabs;
    }

    std::vector<std::unique_ptr<DynInst[]>> slabs;
    std::vector<InstHandle> freeList;
    size_t activeSlabs = 0;
    size_t inUse_ = 0;
};

/**
 * Fixed-capacity FIFO of instruction handles with O(1) push/pop at
 * both ends and random access from the front — the shape shared by
 * the fetch queue and the ROB. Backed by one power-of-two array;
 * never allocates after construction.
 */
class HandleRing
{
  public:
    explicit HandleRing(size_t capacity) : cap(capacity)
    {
        size_t n = 1;
        while (n < capacity)
            n <<= 1;
        buf.assign(n, invalidInstHandle);
        mask = u32(n - 1);
    }

    size_t size() const { return count; }
    size_t capacity() const { return cap; }
    bool empty() const { return count == 0; }
    bool full() const { return count >= cap; }

    void
    push_back(InstHandle h)
    {
        buf[(head + count) & mask] = h;
        ++count;
    }

    void
    push_front(InstHandle h)
    {
        head = (head - 1) & mask;
        buf[head] = h;
        ++count;
    }

    InstHandle
    pop_front()
    {
        const InstHandle h = buf[head];
        head = (head + 1) & mask;
        --count;
        return h;
    }

    InstHandle
    pop_back()
    {
        --count;
        return buf[(head + count) & mask];
    }

    InstHandle front() const { return buf[head]; }
    InstHandle back() const { return buf[(head + count - 1) & mask]; }

    /** @p i counted from the front (oldest). */
    InstHandle operator[](size_t i) const
    {
        return buf[(head + i) & mask];
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

    /** Re-size to @p capacity and empty the ring; the backing array is
     *  reused when the rounded power-of-two size is unchanged. */
    void
    reset(size_t capacity)
    {
        cap = capacity;
        size_t n = 1;
        while (n < capacity)
            n <<= 1;
        if (n != buf.size())
            buf.assign(n, invalidInstHandle);
        mask = u32(n - 1);
        head = 0;
        count = 0;
    }

  private:
    std::vector<InstHandle> buf;
    u32 mask = 0;
    u32 head = 0;
    u32 count = 0;
    size_t cap = 0;
};

} // namespace rix

#endif // RIX_CPU_DYN_INST_POOL_HH
