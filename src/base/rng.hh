/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All stochastic behaviour in the repository (workload data generation,
 * property tests) flows through this LCG so that every run is exactly
 * reproducible from a seed.
 */

#ifndef RIX_BASE_RNG_HH
#define RIX_BASE_RNG_HH

#include "base/types.hh"

namespace rix
{

/**
 * 64-bit linear congruential generator (Knuth MMIX constants).
 * Deliberately simple: the same recurrence is implemented inside the
 * simulated workloads, so in-ISA and host-side streams can be matched.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x2545f4914f6cdd1dull) : state(seed) {}

    /** Next raw 64-bit value. */
    u64
    next()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    u64
    below(u64 bound)
    {
        // Use the high bits; low LCG bits have short periods.
        return (next() >> 16) % bound;
    }

    /** Uniform value in [lo, hi]. */
    s64
    range(s64 lo, s64 hi)
    {
        return lo + s64(below(u64(hi - lo + 1)));
    }

    /** Bernoulli draw with probability @p permille / 1000. */
    bool
    chance(unsigned permille)
    {
        return below(1000) < permille;
    }

    u64 raw() const { return state; }

  private:
    u64 state;
};

} // namespace rix

#endif // RIX_BASE_RNG_HH
