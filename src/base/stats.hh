/**
 * @file
 * Lightweight statistics registry.
 *
 * Components own Counter / Scalar members and register them into a
 * StatSet so that the simulator driver can enumerate and print every
 * statistic uniformly (the moral equivalent of the gem5 stats package,
 * scoped down to what the paper's evaluation needs).
 */

#ifndef RIX_BASE_STATS_HH
#define RIX_BASE_STATS_HH

#include <map>
#include <string>
#include <vector>

#include "base/types.hh"

namespace rix
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void operator++() { ++val_; }
    void operator++(int) { ++val_; }
    void operator+=(u64 n) { val_ += n; }
    u64 value() const { return val_; }
    void reset() { val_ = 0; }

  private:
    u64 val_ = 0;
};

/**
 * Named statistic dictionary. Values are stored as doubles; counters are
 * snapshotted in at collection time.
 */
class StatSet
{
  public:
    void set(const std::string &name, double value) { vals_[name] = value; }

    void
    add(const std::string &name, double value)
    {
        vals_[name] += value;
    }

    bool has(const std::string &name) const { return vals_.count(name) > 0; }

    /** Fetch a value; returns @p dflt when absent. */
    double get(const std::string &name, double dflt = 0.0) const;

    const std::map<std::string, double> &all() const { return vals_; }

    /** Render "name = value" lines, one per statistic. */
    std::string format() const;

  private:
    std::map<std::string, double> vals_;
};

/** Arithmetic mean of a range of doubles; 0 on empty input. */
double arithMean(const std::vector<double> &xs);

/** Geometric mean of positive doubles; 0 on empty input. */
double geoMean(const std::vector<double> &xs);

} // namespace rix

#endif // RIX_BASE_STATS_HH
