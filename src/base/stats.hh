/**
 * @file
 * Lightweight statistics registry.
 *
 * Components own Counter / Scalar members and register them into a
 * StatSet so that the simulator driver can enumerate and print every
 * statistic uniformly (the moral equivalent of the gem5 stats package,
 * scoped down to what the paper's evaluation needs).
 */

#ifndef RIX_BASE_STATS_HH
#define RIX_BASE_STATS_HH

#include <cstdio>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"

namespace rix
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void operator++() { ++val_; }
    void operator++(int) { ++val_; }
    void operator+=(u64 n) { val_ += n; }
    u64 value() const { return val_; }
    void reset() { val_ = 0; }

  private:
    u64 val_ = 0;
};

/**
 * Named statistic dictionary. Values are stored as doubles; counters are
 * snapshotted in at collection time.
 */
class StatSet
{
  public:
    void set(const std::string &name, double value) { vals_[name] = value; }

    void
    add(const std::string &name, double value)
    {
        vals_[name] += value;
    }

    bool has(const std::string &name) const { return vals_.count(name) > 0; }

    /** Fetch a value; returns @p dflt when absent. */
    double get(const std::string &name, double dflt = 0.0) const;

    const std::map<std::string, double> &all() const { return vals_; }

    /** Render "name = value" lines, one per statistic. */
    std::string format() const;

  private:
    std::map<std::string, double> vals_;
};

/**
 * Row-oriented statistics registry: the uniform export path of the
 * scenario subsystem. Each row is one simulation point, made of
 * ordered string labels (scenario, workload, config, ...) plus a
 * StatSet of numeric statistics, and the whole registry renders as
 * JSON lines (one self-describing object per row) or CSV (label
 * columns first, then the sorted union of stat names; absent cells
 * are empty).
 */
class StatRegistry
{
  public:
    struct Row
    {
        std::vector<std::pair<std::string, std::string>> labels;
        StatSet stats;

        void
        label(const std::string &key, const std::string &value)
        {
            labels.emplace_back(key, value);
        }
    };

    /** Append a row; the reference stays valid (deque-like growth). */
    Row &addRow();

    size_t numRows() const { return rows_.size(); }
    const Row &row(size_t i) const { return rows_.at(i); }

    /** One compact JSON object per row, labels first. */
    void writeJsonLines(FILE *out) const;

    /** Header + one line per row; fields containing separators,
     *  quotes or newlines are RFC-4180 quoted. */
    void writeCsv(FILE *out) const;

  private:
    std::deque<Row> rows_; // deque: addRow() must not move prior rows
};

/** Arithmetic mean of a range of doubles; 0 on empty input. */
double arithMean(const std::vector<double> &xs);

/** Geometric mean of positive doubles; 0 on empty input. */
double geoMean(const std::vector<double> &xs);

/** Percent speedup of @p x over baseline value @p base. */
double speedupPct(double base, double x);

/** Geometric mean of speedup percentages (via ratios, paper style). */
double gmeanSpeedupPct(const std::vector<double> &pcts);

} // namespace rix

#endif // RIX_BASE_STATS_HH
