/**
 * @file
 * Fixed-size thread pool for independent simulation jobs.
 *
 * Deliberately minimal (no work stealing, no priorities): the sweep
 * engine's jobs are coarse (one full simulation each), so a single
 * mutex-protected FIFO queue is nowhere near contention. Tasks are
 * submitted as packaged jobs and hand back a std::future, so callers
 * collect results in *submission* order and exceptions thrown inside a
 * task propagate to the collector instead of killing a worker.
 *
 * The destructor drains the queue: every task submitted before
 * destruction runs to completion, then the workers join. This is the
 * shutdown contract the sweep engine relies on — a pool going out of
 * scope never abandons queued work.
 */

#ifndef RIX_BASE_THREAD_POOL_HH
#define RIX_BASE_THREAD_POOL_HH

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rix
{

class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (at least one). */
    explicit ThreadPool(unsigned num_threads);

    /** Runs every already-submitted task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p fn for execution on some worker. The returned future
     * delivers fn's result, or rethrows whatever it threw.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<decltype(fn())>
    {
        using Result = decltype(fn());
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> fut = task->get_future();
        {
            std::lock_guard<std::mutex> lk(mu);
            queue.push([task]() { (*task)(); });
        }
        cv.notify_one();
        return fut;
    }

    /**
     * Drop every queued-but-not-yet-started task. Tasks already
     * running finish normally; the dropped tasks' futures complete
     * with std::future_error(broken_promise), which collectors treat
     * as "skipped". Safe to call concurrently with submit() and with
     * the destructor's drain (whichever takes the queue lock first
     * wins each task) — but, like any member call, only while the
     * object is guaranteed alive: an external thread must not let the
     * call race the destructor itself. A *task* may always call this
     * on its own pool; the destructor joins only after every running
     * task returns.
     * @return number of tasks dropped.
     */
    size_t cancelPending();

    unsigned size() const { return unsigned(workers.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::queue<std::function<void()>> queue;
    std::mutex mu;
    std::condition_variable cv;
    bool stopping = false;
};

/**
 * Worker count from the environment: RIX_JOBS when set (minimum 1),
 * else std::thread::hardware_concurrency(). RIX_JOBS=1 means "run
 * serially on the calling thread" to every consumer of this knob.
 */
unsigned jobsFromEnv();

} // namespace rix

#endif // RIX_BASE_THREAD_POOL_HH
