/**
 * @file
 * Cooperative cancellation for long-running simulation loops.
 *
 * A CancelToken is armed by a job driver (wall-clock deadline, external
 * cancel) and *polled* by the simulation loops (Core::run,
 * Emulator::run) every few thousand steps. Nothing is preempted: the
 * loop notices the token at its next poll point and stops cleanly, so
 * a runaway or hung job is reaped without aborting the process or
 * corrupting shared state — the fault-containment discipline behind
 * per-job timeouts in the sweep engine and the `rix serve` daemon.
 *
 * Zero overhead when off: a loop that was not handed a token performs
 * one null-pointer test per poll interval and nothing else (the same
 * discipline as the lockstep checker's disabled path).
 *
 * Thread-safety: cancel() may be called from any thread (an external
 * watchdog, a signal-handling thread); poll() is called from the
 * simulating thread. The deadline is immutable after arm(), so poll()
 * reads it without synchronization; the fired state is an atomic.
 */

#ifndef RIX_BASE_CANCEL_HH
#define RIX_BASE_CANCEL_HH

#include <atomic>
#include <chrono>

#include "base/types.hh"

namespace rix
{

/** Why a cancellation token fired. */
enum class CancelReason : u32
{
    None = 0,
    /** The armed wall-clock deadline passed (per-job timeout). */
    Deadline,
    /** cancel() was called externally (shutdown, strict-mode abort). */
    External,
};

class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    CancelToken() = default;

    /** Re-arm for a new job: clear the fired state and set a wall-clock
     *  deadline @p timeout_ms from now (0: no deadline). Must not race
     *  poll()/cancel() — arm strictly before handing the token out. */
    void
    arm(u64 timeout_ms)
    {
        fired.store(u32(CancelReason::None), std::memory_order_relaxed);
        hasDeadline = timeout_ms != 0;
        if (hasDeadline)
            deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    }

    /** Fire the token externally; idempotent, any thread. */
    void
    cancel(CancelReason why = CancelReason::External) const
    {
        u32 expect = u32(CancelReason::None);
        fired.compare_exchange_strong(expect, u32(why),
                                      std::memory_order_relaxed);
    }

    /**
     * The simulation loop's check: the fired reason, evaluating the
     * wall-clock deadline as a side effect. Once fired, stays fired
     * until the next arm().
     */
    CancelReason
    poll() const
    {
        const u32 f = fired.load(std::memory_order_relaxed);
        if (f != u32(CancelReason::None))
            return CancelReason(f);
        if (hasDeadline && Clock::now() >= deadline) {
            cancel(CancelReason::Deadline);
            return CancelReason(
                fired.load(std::memory_order_relaxed));
        }
        return CancelReason::None;
    }

    /** The fired reason without deadline evaluation (collectors). */
    CancelReason
    firedReason() const
    {
        return CancelReason(fired.load(std::memory_order_relaxed));
    }

  private:
    // Logically const from the poller's side: poll() on a `const
    // CancelToken *` may still latch the Deadline reason.
    mutable std::atomic<u32> fired{0};
    Clock::time_point deadline{};
    bool hasDeadline = false;
};

} // namespace rix

#endif // RIX_BASE_CANCEL_HH
