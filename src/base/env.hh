/**
 * @file
 * Strict parsing of the numeric RIX_* environment knobs.
 *
 * The historical strtoull-based parsing accepted "0" and arbitrary
 * garbage ("4x", "abc", "") as zero, which silently built degenerate
 * workloads that ran to the retired-instruction cap instead of failing
 * (ISSUE 3's motivating bug). These helpers reject anything that is
 * not a plain positive decimal integer, loudly, naming the variable.
 */

#ifndef RIX_BASE_ENV_HH
#define RIX_BASE_ENV_HH

#include "base/types.hh"

namespace rix
{

/**
 * Parse @p text as a strictly positive decimal count.
 * @param what  name used in the diagnostic (e.g. "RIX_SCALE")
 * Fatal on empty input, non-digits, trailing junk, zero, or overflow.
 */
u64 parsePositiveCount(const char *what, const char *text);

/**
 * The value of the environment variable @p name, which must be a
 * strictly positive decimal integer when set.
 * @return @p dflt when the variable is unset; fatal on invalid values
 *         ("0", "abc", "4x", "").
 */
u64 envPositiveCount(const char *name, u64 dflt);

/**
 * Parse @p text as a non-negative decimal count (zero allowed — e.g.
 * a retry budget of 0 is meaningful). Fatal on empty input,
 * non-digits, trailing junk, or overflow, naming @p what.
 */
u64 parseNonNegativeCount(const char *what, const char *text);

/** envPositiveCount's sibling for knobs where zero is meaningful
 *  (RIX_RETRIES=0: never retry). Fatal on invalid values. */
u64 envNonNegativeCount(const char *name, u64 dflt);

} // namespace rix

#endif // RIX_BASE_ENV_HH
