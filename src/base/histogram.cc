#include "base/histogram.hh"

#include <cassert>

#include "base/log.hh"
#include "base/stats.hh"

namespace rix
{

Histogram::Histogram(std::vector<u64> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
{
    for (size_t i = 1; i < bounds_.size(); ++i)
        assert(bounds_[i] > bounds_[i - 1] && "bounds must ascend");
}

void
Histogram::sample(u64 value, u64 count)
{
    size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i])
        ++i;
    counts_[i] += count;
    total_ += count;
    sum_ += double(value) * double(count);
}

u64
Histogram::bucketCount(size_t i) const
{
    assert(i < counts_.size());
    return counts_[i];
}

double
Histogram::cumulativeFraction(size_t bucket) const
{
    if (total_ == 0)
        return 0.0;
    u64 acc = 0;
    for (size_t i = 0; i <= bucket && i < counts_.size(); ++i)
        acc += counts_[i];
    return double(acc) / double(total_);
}

double
Histogram::mean() const
{
    return total_ == 0 ? 0.0 : sum_ / double(total_);
}

u64
Histogram::quantile(double q) const
{
    if (total_ == 0 || bounds_.empty())
        return 0;
    const double target = q * double(total_);
    u64 acc = 0;
    for (size_t i = 0; i < bounds_.size(); ++i) {
        acc += counts_[i];
        if (double(acc) >= target)
            return bounds_[i];
    }
    return bounds_.back(); // overflow saturates to the last bound
}

void
Histogram::exportTo(StatSet &out, const std::string &prefix) const
{
    for (size_t i = 0; i < bounds_.size(); ++i)
        out.set(prefix + strfmt(".le_%llu", (unsigned long long)bounds_[i]),
                double(counts_[i]));
    out.set(prefix + ".overflow",
            counts_.empty() ? 0.0 : double(counts_.back()));
    out.set(prefix + ".samples", double(total_));
    out.set(prefix + ".mean", mean());
}

void
Histogram::reset()
{
    counts_.assign(counts_.size(), 0);
    total_ = 0;
    sum_ = 0.0;
}

} // namespace rix
