/**
 * @file
 * Error reporting in the gem5 tradition: panic() for internal simulator
 * bugs (aborts), fatal() for user/configuration errors (clean exit),
 * warn() for suspicious-but-survivable conditions.
 */

#ifndef RIX_BASE_LOG_HH
#define RIX_BASE_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace rix
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace rix

/** Something that should never happen happened: a simulator bug. */
#define rix_panic(...) \
    ::rix::panicImpl(__FILE__, __LINE__, ::rix::strfmt(__VA_ARGS__))

/** The simulation cannot continue due to a user error. */
#define rix_fatal(...) \
    ::rix::fatalImpl(__FILE__, __LINE__, ::rix::strfmt(__VA_ARGS__))

/** Informational warning; simulation continues. */
#define rix_warn(...) \
    ::rix::warnImpl(__FILE__, __LINE__, ::rix::strfmt(__VA_ARGS__))

#endif // RIX_BASE_LOG_HH
