/**
 * @file
 * The fault model of job execution: per-job failure statuses, the
 * transient/permanent classification, and the retry/timeout policy.
 *
 * Historically every error on a job path was a rix_fatal process
 * abort, so one bad job (divergence, runaway program, malformed
 * request) destroyed an entire multi-hour sweep and made a long-running
 * daemon impossible. This header makes failure *data*: a job finishes
 * with a JobStatus, failures carry a diagnostic, and the driver decides
 * — per the FaultPolicy — whether to retry (transient failures only,
 * bounded exponential backoff), report and continue (graceful
 * degradation), or fail fast (--strict).
 *
 * Status taxonomy (also the wire names of the `rix serve` protocol):
 *
 *   ok          completed within limits
 *   divergence  lockstep checker stopped the core (permanent)
 *   stuck       pipeline watchdog: no retirement progress (permanent)
 *   timeout     wall-clock deadline passed (transient: host-load
 *               dependent, retried per policy)
 *   transient   a spurious, retryable failure (resource exhaustion,
 *               injected); becomes the final status only when the
 *               retry budget is exhausted
 *   crash       an exception escaped the job (permanent)
 *   skipped     cancelled before it ran (strict-mode abort, shutdown)
 *   invalid     rejected before execution (malformed request/config)
 */

#ifndef RIX_BASE_FAULT_HH
#define RIX_BASE_FAULT_HH

#include <stdexcept>
#include <string>

#include "base/types.hh"

namespace rix
{

enum class JobStatus : u8
{
    Ok = 0,
    Divergence,
    Stuck,
    Timeout,
    Transient,
    Crash,
    Skipped,
    Invalid,
};

/** Wire/export name of @p s ("ok", "divergence", ...). */
const char *jobStatusName(JobStatus s);

/** Inverse of jobStatusName; false when @p name is unknown. */
bool jobStatusFromName(const std::string &name, JobStatus *out);

/**
 * Transient failures may succeed on retry (host-load timeouts,
 * resource exhaustion, injected spurious faults); permanent ones are
 * deterministic properties of the job and never retried.
 */
bool jobStatusIsTransient(JobStatus s);

/** A spurious, retryable job failure (the injectable kind). */
class TransientError : public std::runtime_error
{
  public:
    explicit TransientError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * How a driver treats failing jobs. The environment knobs follow the
 * strict-validation policy (bad values are fatal at startup, never
 * silently defaulted):
 *
 *   RIX_TIMEOUT_MS  per-job wall-clock timeout in milliseconds
 *                   (positive; unset: no timeout)
 *   RIX_RETRIES     retry budget for transient failures (>= 0;
 *                   unset: 2)
 */
struct FaultPolicy
{
    /** Fail fast: the first failing job is fatal for the whole run
     *  (the historical behaviour). False: complete the healthy jobs
     *  and report per-job statuses. */
    bool strict = false;

    /** Per-job wall-clock timeout in ms; 0 disables the watchdog. */
    u64 timeoutMs = 0;

    /** Maximum retries of a transient failure (attempts = retries+1). */
    unsigned retries = 2;

    /** Exponential backoff before retry k: base * 2^(k-1), capped. */
    u64 backoffBaseMs = 10;
    u64 backoffCapMs = 2000;

    /** Backoff before retry @p attempt (1-based), in milliseconds. */
    u64 backoffMs(unsigned attempt) const;

    /** @p strict_dflt with the RIX_TIMEOUT_MS / RIX_RETRIES overrides
     *  applied (fatal on invalid values). */
    static FaultPolicy fromEnv(bool strict_dflt = false);
};

} // namespace rix

#endif // RIX_BASE_FAULT_HH
