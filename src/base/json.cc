#include "base/json.hh"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/log.hh"

namespace rix
{

/** Recursive-descent parser over the raw document text. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *err)
        : s(text.c_str()), end(text.c_str() + text.size()), err_(err)
    {
    }

    JsonValue
    document()
    {
        JsonValue v = value();
        if (failed)
            return JsonValue{};
        skipWs();
        if (s != end) {
            fail("trailing content after the document");
            return JsonValue{};
        }
        return v;
    }

    bool ok() const { return !failed; }

  private:
    // Containers deeper than this are a parse error, not a stack
    // overflow: the recursive-descent parser would otherwise crash on
    // adversarial inputs like 100k open brackets.
    static constexpr unsigned maxDepth = 128;

    JsonValue
    value()
    {
        skipWs();
        if (s == end) {
            fail("unexpected end of input");
            return {};
        }
        switch (*s) {
          case '{':
          case '[': {
              if (depth >= maxDepth) {
                  fail("nesting deeper than %u levels", maxDepth);
                  return {};
              }
              ++depth;
              JsonValue v = *s == '{' ? object() : array();
              --depth;
              return v;
          }
          case '"': return string();
          case 't': return keyword("true");
          case 'f': return keyword("false");
          case 'n': return keyword("null");
          default: return number();
        }
    }

    JsonValue
    object()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        ++s; // '{'
        skipWs();
        if (s != end && *s == '}') {
            ++s;
            return v;
        }
        while (!failed) {
            skipWs();
            if (s == end || *s != '"') {
                fail("expected a string object key");
                break;
            }
            JsonValue key = string();
            if (failed)
                break;
            for (const auto &[k, unused] : v.obj) {
                (void)unused;
                if (k == key.strVal) {
                    fail("duplicate object key '%s'", key.strVal.c_str());
                    break;
                }
            }
            if (failed)
                break;
            skipWs();
            if (s == end || *s != ':') {
                fail("expected ':' after object key");
                break;
            }
            ++s;
            JsonValue member = value();
            if (failed)
                break;
            v.obj.emplace_back(std::move(key.strVal), std::move(member));
            skipWs();
            if (s != end && *s == ',') {
                ++s;
                continue;
            }
            if (s != end && *s == '}') {
                ++s;
                return v;
            }
            fail("expected ',' or '}' in object");
        }
        return {};
    }

    JsonValue
    array()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        ++s; // '['
        skipWs();
        if (s != end && *s == ']') {
            ++s;
            return v;
        }
        while (!failed) {
            JsonValue item = value();
            if (failed)
                break;
            v.arr.push_back(std::move(item));
            skipWs();
            if (s != end && *s == ',') {
                ++s;
                continue;
            }
            if (s != end && *s == ']') {
                ++s;
                return v;
            }
            fail("expected ',' or ']' in array");
        }
        return {};
    }

    JsonValue
    string()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::String;
        ++s; // opening quote
        while (s != end && *s != '"') {
            unsigned char c = (unsigned char)*s;
            if (c < 0x20) {
                fail("unescaped control character in string");
                return {};
            }
            if (c != '\\') {
                v.strVal += *s++;
                continue;
            }
            ++s;
            if (s == end)
                break;
            switch (*s) {
              case '"': v.strVal += '"'; break;
              case '\\': v.strVal += '\\'; break;
              case '/': v.strVal += '/'; break;
              case 'b': v.strVal += '\b'; break;
              case 'f': v.strVal += '\f'; break;
              case 'n': v.strVal += '\n'; break;
              case 'r': v.strVal += '\r'; break;
              case 't': v.strVal += '\t'; break;
              case 'u': {
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i) {
                      ++s;
                      if (s == end || !isxdigit((unsigned char)*s)) {
                          fail("bad \\u escape");
                          return {};
                      }
                      const char c2 = *s;
                      cp = cp * 16 +
                           unsigned(c2 <= '9'   ? c2 - '0'
                                    : c2 <= 'F' ? c2 - 'A' + 10
                                                : c2 - 'a' + 10);
                  }
                  // UTF-8 encode (BMP only; specs are ASCII anyway).
                  if (cp < 0x80) {
                      v.strVal += char(cp);
                  } else if (cp < 0x800) {
                      v.strVal += char(0xC0 | (cp >> 6));
                      v.strVal += char(0x80 | (cp & 0x3F));
                  } else {
                      v.strVal += char(0xE0 | (cp >> 12));
                      v.strVal += char(0x80 | ((cp >> 6) & 0x3F));
                      v.strVal += char(0x80 | (cp & 0x3F));
                  }
                  break;
              }
              default:
                fail("bad escape '\\%c'", *s);
                return {};
            }
            ++s;
        }
        if (s == end) {
            fail("unterminated string");
            return {};
        }
        ++s; // closing quote
        return v;
    }

    JsonValue
    number()
    {
        const char *start = s;
        if (s != end && *s == '-')
            ++s;
        if (s == end || !isdigit((unsigned char)*s)) {
            fail("invalid value");
            return {};
        }
        if (*s == '0' && s + 1 != end && isdigit((unsigned char)s[1])) {
            fail("leading zeros are not allowed in numbers");
            return {};
        }
        while (s != end && isdigit((unsigned char)*s))
            ++s;
        bool integral = true;
        if (s != end && *s == '.') {
            integral = false;
            ++s;
            if (s == end || !isdigit((unsigned char)*s)) {
                fail("digits must follow the decimal point");
                return {};
            }
            while (s != end && isdigit((unsigned char)*s))
                ++s;
        }
        if (s != end && (*s == 'e' || *s == 'E')) {
            integral = false;
            ++s;
            if (s != end && (*s == '+' || *s == '-'))
                ++s;
            if (s == end || !isdigit((unsigned char)*s)) {
                fail("digits must follow the exponent");
                return {};
            }
            while (s != end && isdigit((unsigned char)*s))
                ++s;
        }
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        v.numVal = strtod(std::string(start, s).c_str(), nullptr);
        v.integral = integral;
        // strtod saturates huge literals ("1e999") to +-inf; letting
        // that through would silently turn a typo'd config value into
        // infinity downstream.
        if (!std::isfinite(v.numVal)) {
            fail("number overflows the representable range");
            return {};
        }
        return v;
    }

    JsonValue
    keyword(const char *word)
    {
        const size_t n = strlen(word);
        if (size_t(end - s) < n || strncmp(s, word, n) != 0) {
            fail("invalid value");
            return {};
        }
        s += n;
        JsonValue v;
        if (word[0] == 't' || word[0] == 'f') {
            v.kind_ = JsonValue::Kind::Bool;
            v.boolVal = word[0] == 't';
        }
        return v;
    }

    void
    skipWs()
    {
        while (s != end &&
               (*s == ' ' || *s == '\t' || *s == '\n' || *s == '\r'))
            ++s;
    }

    void
    fail(const char *fmt, ...)
    {
        if (failed)
            return;
        failed = true;
        if (!err_)
            return;
        // Compute line/column of the failure point.
        unsigned line = 1, col = 1;
        for (const char *p = begin_; p < s; ++p) {
            if (*p == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        va_list ap;
        va_start(ap, fmt);
        char buf[256];
        vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        *err_ = strfmt("line %u col %u: %s", line, col, buf);
    }

    const char *s;
    const char *const end;
    const char *const begin_ = s;
    std::string *err_;
    bool failed = false;
    unsigned depth = 0;
};

JsonValue
JsonValue::parse(const std::string &text, std::string *err)
{
    if (err)
        err->clear();
    JsonParser p(text, err);
    return p.document();
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
JsonValue::dump() const
{
    switch (kind_) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return boolVal ? "true" : "false";
      case Kind::Number:
        return jsonNumber(numVal);
      case Kind::String:
        return "\"" + jsonEscape(strVal) + "\"";
      case Kind::Array: {
          std::string out = "[";
          for (size_t i = 0; i < arr.size(); ++i)
              out += (i ? "," : "") + arr[i].dump();
          return out + "]";
      }
      case Kind::Object: {
          std::string out = "{";
          for (size_t i = 0; i < obj.size(); ++i)
              out += std::string(i ? "," : "") + "\"" +
                     jsonEscape(obj[i].first) + "\":" + obj[i].second.dump();
          return out + "}";
      }
    }
    return "null";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += char(c);
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15)
        return strfmt("%.0f", v);
    if (!std::isfinite(v))
        return "null"; // JSON has no inf/nan
    return strfmt("%.17g", v);
}

std::string
jsonCoerceCount(const JsonValue &v, u64 max, u64 *out)
{
    if (!v.isNumber())
        return "expected a number";
    if (!v.isIntegral())
        return "expected an integer (no fraction/exponent)";
    const double d = v.asNumber();
    if (d < 0)
        return "must not be negative";
    // 0x1p64 first: double(~u64(0)) rounds *up* to 2^64, so the
    // max-comparison alone would let 2^64 through into a UB cast.
    if (d >= 0x1p64 || d > double(max))
        return strfmt("exceeds the maximum %llu", (unsigned long long)max);
    *out = u64(d);
    return "";
}

} // namespace rix
