/**
 * @file
 * Small bit-manipulation helpers used by caches, predictors and the
 * integration table index functions.
 */

#ifndef RIX_BASE_BITUTIL_HH
#define RIX_BASE_BITUTIL_HH

#include <cassert>

#include "base/types.hh"

namespace rix
{

/** Return a mask of the low @p nbits bits. */
constexpr u64
mask(unsigned nbits)
{
    return nbits >= 64 ? ~u64(0) : (u64(1) << nbits) - 1;
}

/** Extract bits [first, last] (inclusive, last >= first) of @p val. */
constexpr u64
bits(u64 val, unsigned last, unsigned first)
{
    return (val >> first) & mask(last - first + 1);
}

/** Sign-extend the low @p nbits bits of @p val to 64 bits. */
constexpr s64
sext(u64 val, unsigned nbits)
{
    const u64 m = u64(1) << (nbits - 1);
    const u64 v = val & mask(nbits);
    return s64((v ^ m) - m);
}

/** True iff @p v is a power of two (zero is not). */
constexpr bool
isPow2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2; @p v must be non-zero. */
constexpr unsigned
floorLog2(u64 v)
{
    assert(v != 0);
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Ceil of log2; @p v must be non-zero. */
constexpr unsigned
ceilLog2(u64 v)
{
    return isPow2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Align @p a down to a multiple of power-of-two @p unit. */
constexpr u64
alignDown(u64 a, u64 unit)
{
    return a & ~(unit - 1);
}

/** Align @p a up to a multiple of power-of-two @p unit. */
constexpr u64
alignUp(u64 a, u64 unit)
{
    return (a + unit - 1) & ~(unit - 1);
}

/**
 * Mix a 64-bit value into a well-distributed hash (splitmix64 finalizer).
 * Used where a cheap, deterministic scramble is needed (e.g., tests).
 */
constexpr u64
mix64(u64 x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace rix

#endif // RIX_BASE_BITUTIL_HH
