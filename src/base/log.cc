#include "base/log.hh"

#include <cstdarg>

namespace rix
{

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    char buf[1024];
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return std::string(buf);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace rix
