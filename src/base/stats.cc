#include "base/stats.hh"

#include <cmath>
#include <set>
#include <sstream>

#include "base/json.hh"

namespace rix
{

double
StatSet::get(const std::string &name, double dflt) const
{
    auto it = vals_.find(name);
    return it == vals_.end() ? dflt : it->second;
}

std::string
StatSet::format() const
{
    std::ostringstream os;
    for (const auto &[name, value] : vals_)
        os << name << " = " << value << "\n";
    return os.str();
}

StatRegistry::Row &
StatRegistry::addRow()
{
    rows_.emplace_back();
    return rows_.back();
}

void
StatRegistry::writeJsonLines(FILE *out) const
{
    for (const Row &row : rows_) {
        fputc('{', out);
        bool first = true;
        for (const auto &[key, value] : row.labels) {
            fprintf(out, "%s\"%s\": \"%s\"", first ? "" : ", ",
                    jsonEscape(key).c_str(), jsonEscape(value).c_str());
            first = false;
        }
        for (const auto &[name, value] : row.stats.all()) {
            fprintf(out, "%s\"%s\": %s", first ? "" : ", ",
                    jsonEscape(name).c_str(), jsonNumber(value).c_str());
            first = false;
        }
        fputs("}\n", out);
    }
}

namespace
{

/** RFC-4180 quoting: fields with separators/quotes/newlines are
 *  wrapped in double quotes with embedded quotes doubled. */
void
putCsvField(FILE *out, const std::string &s)
{
    if (s.find_first_of(",\"\r\n") == std::string::npos) {
        fputs(s.c_str(), out);
        return;
    }
    fputc('"', out);
    for (char c : s) {
        if (c == '"')
            fputc('"', out);
        fputc(c, out);
    }
    fputc('"', out);
}

} // namespace

void
StatRegistry::writeCsv(FILE *out) const
{
    // Column plan: label keys in first-seen order, then the sorted
    // union of stat names across every row.
    std::vector<std::string> labelCols;
    std::set<std::string> statCols;
    for (const Row &row : rows_) {
        for (const auto &[key, unused] : row.labels) {
            (void)unused;
            bool seen = false;
            for (const auto &c : labelCols)
                seen = seen || c == key;
            if (!seen)
                labelCols.push_back(key);
        }
        for (const auto &[name, unused] : row.stats.all()) {
            (void)unused;
            statCols.insert(name);
        }
    }

    bool first = true;
    for (const auto &c : labelCols) {
        fputs(first ? "" : ",", out);
        putCsvField(out, c);
        first = false;
    }
    for (const auto &c : statCols) {
        fputs(first ? "" : ",", out);
        putCsvField(out, c);
        first = false;
    }
    fputc('\n', out);

    for (const Row &row : rows_) {
        first = true;
        for (const auto &c : labelCols) {
            const std::string *v = nullptr;
            for (const auto &[key, value] : row.labels)
                if (key == c)
                    v = &value;
            fputs(first ? "" : ",", out);
            if (v)
                putCsvField(out, *v);
            first = false;
        }
        for (const auto &c : statCols) {
            fputs(first ? "" : ",", out);
            if (row.stats.has(c))
                fputs(jsonNumber(row.stats.get(c)).c_str(), out);
            first = false;
        }
        fputc('\n', out);
    }
}

double
arithMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / double(xs.size());
}

double
geoMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double x : xs)
        logsum += std::log(x);
    return std::exp(logsum / double(xs.size()));
}

double
speedupPct(double base, double x)
{
    return base > 0 ? (x / base - 1.0) * 100.0 : 0.0;
}

double
gmeanSpeedupPct(const std::vector<double> &pcts)
{
    std::vector<double> ratios;
    for (double p : pcts)
        ratios.push_back(1.0 + p / 100.0);
    return (geoMean(ratios) - 1.0) * 100.0;
}

} // namespace rix
