#include "base/stats.hh"

#include <cmath>
#include <sstream>

namespace rix
{

double
StatSet::get(const std::string &name, double dflt) const
{
    auto it = vals_.find(name);
    return it == vals_.end() ? dflt : it->second;
}

std::string
StatSet::format() const
{
    std::ostringstream os;
    for (const auto &[name, value] : vals_)
        os << name << " = " << value << "\n";
    return os.str();
}

double
arithMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / double(xs.size());
}

double
geoMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double x : xs)
        logsum += std::log(x);
    return std::exp(logsum / double(xs.size()));
}

} // namespace rix
