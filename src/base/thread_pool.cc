#include "base/thread_pool.hh"

#include <cstdlib>

namespace rix
{

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = 1;
    workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [this]() { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop();
        }
        // packaged_task catches the task's exceptions and stores them
        // in the future; nothing escapes into the worker loop.
        task();
    }
}

unsigned
jobsFromEnv()
{
    if (const char *s = getenv("RIX_JOBS")) {
        const unsigned long n = strtoul(s, nullptr, 10);
        return n == 0 ? 1 : unsigned(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace rix
