#include "base/thread_pool.hh"

#include <cstdlib>

#include "base/env.hh"
#include "base/log.hh"

namespace rix
{

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = 1;
    workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &t : workers)
        t.join();
}

size_t
ThreadPool::cancelPending()
{
    // Swap the queue out under the lock, destroy outside it: dropping
    // a packaged_task abandons its shared state (broken_promise) and
    // may run arbitrary captured destructors, which must not happen
    // while holding the pool mutex.
    std::queue<std::function<void()>> dropped;
    {
        std::lock_guard<std::mutex> lk(mu);
        dropped.swap(queue);
    }
    return dropped.size();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [this]() { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop();
        }
        // packaged_task catches the task's exceptions and stores them
        // in the future; nothing escapes into the worker loop.
        task();
    }
}

unsigned
jobsFromEnv()
{
    // Strictly validated: the historical strtoul parsing mapped "0"
    // and garbage ("abc", "4x") to a silent serial fallback.
    const unsigned hw = std::thread::hardware_concurrency();
    const u64 n = envPositiveCount("RIX_JOBS", hw == 0 ? 1 : hw);
    if (n > 1024)
        rix_fatal("RIX_JOBS: %llu workers is not a sane thread count "
                  "(max 1024)", (unsigned long long)n);
    return unsigned(n);
}

} // namespace rix
