/**
 * @file
 * Minimal hand-rolled JSON reader for the scenario subsystem.
 *
 * Supports the full JSON value grammar (objects, arrays, strings with
 * escapes, numbers, booleans, null) with two deliberate properties the
 * scenario specs rely on:
 *
 *  - object members preserve their textual order (a grid axis declared
 *    first varies slowest), and duplicate keys are a parse error;
 *  - numbers remember whether they were written as integers, so
 *    configuration fields can reject fractional values loudly instead
 *    of truncating them.
 *
 * Parse errors carry line/column positions. No external dependencies.
 */

#ifndef RIX_BASE_JSON_HH
#define RIX_BASE_JSON_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"

namespace rix
{

class JsonValue
{
  public:
    enum class Kind : u8 { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    /**
     * Parse @p text as one JSON document.
     * @return the value; on malformed input, a Null value with a
     *         "line L col C: ..." diagnostic in *err.
     */
    static JsonValue parse(const std::string &text, std::string *err);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return boolVal; }
    double asNumber() const { return numVal; }
    /** True when the literal had no fraction/exponent part. */
    bool isIntegral() const { return kind_ == Kind::Number && integral; }
    const std::string &asString() const { return strVal; }

    const std::vector<JsonValue> &items() const { return arr; }

    /** Object members in document order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return obj;
    }

    /** Member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    /** Render back to compact JSON (tests, diagnostics). */
    std::string dump() const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool boolVal = false;
    bool integral = false;
    double numVal = 0.0;
    std::string strVal;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;
};

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Format @p v the way the stat emitters want it: integral values
 * (within the exact double range) print with no fraction, everything
 * else as shortest round-trippable decimal.
 */
std::string jsonNumber(double v);

/**
 * Coerce a JSON number into a non-negative integer count <= @p max
 * (the shared field-coercion rule of the spec parsers).
 * @return "" on success (with *out set), else a diagnostic.
 */
std::string jsonCoerceCount(const JsonValue &v, u64 max, u64 *out);

} // namespace rix

#endif // RIX_BASE_JSON_HH
