/**
 * @file
 * Fundamental scalar types shared by every rix library.
 *
 * The simulator follows the conventions of Alpha-era out-of-order
 * machines: 64-bit data paths, word-indexed code memory, byte-addressed
 * data memory, and monotonically increasing dynamic sequence numbers.
 */

#ifndef RIX_BASE_TYPES_HH
#define RIX_BASE_TYPES_HH

#include <cstdint>

namespace rix
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** Byte address in the simulated data address space. */
using Addr = u64;

/** Instruction-slot index in the simulated code segment (word PC). */
using InstAddr = u64;

/** Simulation cycle count. */
using Cycle = u64;

/** Dynamic instruction sequence number (monotonic, never reused). */
using InstSeqNum = u64;

/** Physical register identifier. */
using PhysReg = u16;

/** Logical (architectural) register identifier. */
using LogReg = u8;

/** Sentinel for "no physical register". */
constexpr PhysReg invalidPhysReg = 0xffff;

/** Sentinel for "no cycle yet". */
constexpr Cycle invalidCycle = ~Cycle(0);

} // namespace rix

#endif // RIX_BASE_TYPES_HH
