#include "base/env.hh"

#include <cctype>
#include <cstdlib>

#include "base/log.hh"

namespace rix
{

u64
parseNonNegativeCount(const char *what, const char *text)
{
    if (!text || !*text)
        rix_fatal("%s: empty value; expected an integer", what);
    u64 v = 0;
    for (const char *p = text; *p; ++p) {
        if (!isdigit((unsigned char)*p))
            rix_fatal("%s: invalid value '%s'; expected an integer",
                      what, text);
        const u64 digit = u64(*p - '0');
        if (v > (~u64(0) - digit) / 10)
            rix_fatal("%s: value '%s' overflows", what, text);
        v = v * 10 + digit;
    }
    return v;
}

u64
parsePositiveCount(const char *what, const char *text)
{
    const u64 v = parseNonNegativeCount(what, text);
    if (v == 0)
        rix_fatal("%s: must be >= 1 (got '%s'); zero would silently "
                  "configure a degenerate run", what, text);
    return v;
}

u64
envPositiveCount(const char *name, u64 dflt)
{
    const char *s = getenv(name);
    return s ? parsePositiveCount(name, s) : dflt;
}

u64
envNonNegativeCount(const char *name, u64 dflt)
{
    const char *s = getenv(name);
    return s ? parseNonNegativeCount(name, s) : dflt;
}

} // namespace rix
