/**
 * @file
 * Ref-counted, byte-budgeted LRU cache — the bounded sharing layer of
 * the `rix serve` daemon.
 *
 * The process-wide ProgramCache/CheckpointCache grow without bound,
 * which is fine for a single sweep but fatal for a long-running daemon
 * under sustained multi-tenant load. This cache keeps memory flat:
 * entries are handed out as shared_ptr<const V> (so concurrent jobs
 * share one build read-only), an entry is *pinned* while any caller
 * still holds a reference (pinned entries are never evicted — a job
 * can never have its program freed underneath it), and once the total
 * footprint exceeds the byte budget, unpinned entries are evicted in
 * least-recently-used order. Builders must be deterministic, so an
 * evicted-and-rebuilt entry is bit-identical to the cold build (tests
 * enforce this).
 *
 * Concurrency: one mutex guards the index; the (expensive) build runs
 * outside it under a per-key "building" marker, so two threads wanting
 * different keys build concurrently while two threads wanting the same
 * key build it once and share (the ProgramCache's call_once discipline,
 * plus eviction). A failed build erases the marker and rethrows, so a
 * poisoned key can be retried.
 *
 * The budget is a hard bound on *unpinned* content: while every entry
 * is pinned by in-flight jobs the total can exceed it (the alternative
 * would be failing jobs that already hold references), but the moment
 * pins are released the next insertion evicts back under budget.
 */

#ifndef RIX_BASE_LRU_CACHE_HH
#define RIX_BASE_LRU_CACHE_HH

#include <condition_variable>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "base/types.hh"

namespace rix
{

template <typename Key, typename Value>
class LruCache
{
  public:
    using Ptr = std::shared_ptr<const Value>;
    using Sizer = std::function<size_t(const Value &)>;

    /** @p budget_bytes 0 means "cache nothing beyond pinned entries";
     *  @p sizer reports an entry's footprint in bytes. */
    LruCache(size_t budget_bytes, Sizer sizer)
        : budget(budget_bytes), sizeOf(std::move(sizer))
    {
    }

    /**
     * The value for @p key, invoking @p build() on a miss. The
     * returned pointer pins the entry until the caller drops it.
     * @p build must return Value and be deterministic for @p key.
     */
    template <typename Builder>
    Ptr
    get(const Key &key, Builder &&build)
    {
        std::unique_lock<std::mutex> lk(mu);
        for (;;) {
            auto it = index.find(key);
            if (it == index.end())
                break;
            if (!it->second.building) {
                ++nHits;
                touch(it->second);
                return it->second.value;
            }
            // Someone else is building this key; wait for it.
            built.wait(lk);
        }

        Entry &e = index[key];
        e.building = true;
        ++nMisses;
        lk.unlock();

        Ptr v;
        try {
            v = std::make_shared<const Value>(build());
        } catch (...) {
            lk.lock();
            index.erase(key);
            built.notify_all();
            throw;
        }
        const size_t bytes = sizeOf(*v);

        lk.lock();
        Entry &done = index[key]; // same slot: building entries are
                                  // never erased except by this thread
        done.value = v;
        done.bytes = bytes;
        done.building = false;
        lru.push_back(key);
        done.pos = std::prev(lru.end());
        totalBytes += bytes;
        evictToBudget();
        built.notify_all();
        return v;
    }

    /** Peek without building; null on miss (tests, stats). */
    Ptr
    peek(const Key &key) const
    {
        std::lock_guard<std::mutex> lk(mu);
        auto it = index.find(key);
        return it != index.end() && !it->second.building
                   ? it->second.value
                   : Ptr();
    }

    u64 hits() const { return locked(&LruCache::nHits); }
    u64 misses() const { return locked(&LruCache::nMisses); }
    u64 evictions() const { return locked(&LruCache::nEvictions); }

    /** Current footprint of cached (completed) entries. */
    size_t
    bytes() const
    {
        std::lock_guard<std::mutex> lk(mu);
        return totalBytes;
    }

    /** Completed entries currently cached. */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mu);
        size_t n = 0;
        for (const auto &kv : index)
            n += kv.second.building ? 0 : 1;
        return n;
    }

    size_t budgetBytes() const { return budget; }

  private:
    struct Entry
    {
        Ptr value;
        size_t bytes = 0;
        bool building = false;
        typename std::list<Key>::iterator pos{};
    };

    void
    touch(Entry &e)
    {
        lru.splice(lru.end(), lru, e.pos);
    }

    /** Evict unpinned entries, LRU first, until under budget. Under
     *  the mutex use_count()==1 proves only the cache holds the value
     *  (no new reference can be taken without the mutex). */
    void
    evictToBudget()
    {
        auto it = lru.begin();
        while (totalBytes > budget && it != lru.end()) {
            auto slot = index.find(*it);
            if (slot->second.value.use_count() == 1) {
                totalBytes -= slot->second.bytes;
                ++nEvictions;
                it = lru.erase(it);
                index.erase(slot);
            } else {
                ++it; // pinned by an in-flight job; never evict
            }
        }
    }

    u64
    locked(u64 LruCache::*m) const
    {
        std::lock_guard<std::mutex> lk(mu);
        return this->*m;
    }

    const size_t budget;
    const Sizer sizeOf;

    mutable std::mutex mu;
    std::condition_variable built;
    std::map<Key, Entry> index;
    std::list<Key> lru; // front = least recently used
    size_t totalBytes = 0;
    u64 nHits = 0, nMisses = 0, nEvictions = 0;
};

} // namespace rix

#endif // RIX_BASE_LRU_CACHE_HH
