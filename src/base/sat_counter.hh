/**
 * @file
 * Saturating counters, the basic storage cell of every predictor in the
 * machine (branch direction tables, chooser, collision history table,
 * and the LISP bias logic).
 */

#ifndef RIX_BASE_SAT_COUNTER_HH
#define RIX_BASE_SAT_COUNTER_HH

#include <cassert>

#include "base/types.hh"

namespace rix
{

/**
 * An n-bit up/down saturating counter.
 *
 * The counter saturates at [0, 2^bits - 1]. The conventional "taken"
 * threshold is the top half of the range.
 */
class SatCounter
{
  public:
    SatCounter() = default;

    SatCounter(unsigned bits, unsigned initial = 0)
        : maxVal(u8((1u << bits) - 1)), val(u8(initial))
    {
        assert(bits >= 1 && bits <= 8);
        assert(initial <= maxVal);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (val < maxVal)
            ++val;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (val > 0)
            --val;
    }

    /** Train toward @p dir (true: increment, false: decrement). */
    void
    train(bool dir)
    {
        dir ? increment() : decrement();
    }

    /** True when the counter is in the top half of its range. */
    bool predictTaken() const { return val > maxVal / 2; }

    /** True when saturated at either extreme. */
    bool saturated() const { return val == 0 || val == maxVal; }

    u8 value() const { return val; }
    u8 maximum() const { return maxVal; }

    void
    set(u8 v)
    {
        assert(v <= maxVal);
        val = v;
    }

  private:
    u8 maxVal = 3;
    u8 val = 0;
};

} // namespace rix

#endif // RIX_BASE_SAT_COUNTER_HH
