/**
 * @file
 * Bucketed histogram used for the Figure-5-style breakdown statistics
 * (integration distance, reference counts) and latency distributions.
 */

#ifndef RIX_BASE_HISTOGRAM_HH
#define RIX_BASE_HISTOGRAM_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace rix
{

/**
 * A histogram over fixed, caller-supplied upper bucket boundaries.
 *
 * A sample s lands in the first bucket whose boundary b satisfies
 * s <= b; samples above the last boundary land in an implicit overflow
 * bucket.
 */
class Histogram
{
  public:
    Histogram() = default;

    /** @param bounds ascending inclusive upper bounds of each bucket. */
    explicit Histogram(std::vector<u64> bounds);

    /** Record one sample. */
    void sample(u64 value, u64 count = 1);

    /** Number of explicit buckets (excluding overflow). */
    size_t numBuckets() const { return bounds_.size(); }

    /** Count in bucket @p i; i == numBuckets() is the overflow bucket. */
    u64 bucketCount(size_t i) const;

    /** Inclusive upper bound of bucket @p i. */
    u64 bucketBound(size_t i) const { return bounds_.at(i); }

    u64 totalSamples() const { return total_; }

    /** Fraction (0..1) of samples at or below @p bound'th bucket. */
    double cumulativeFraction(size_t bucket) const;

    /** Mean of recorded samples (overflow samples use their raw value). */
    double mean() const;

    /**
     * Smallest bucket bound whose cumulative fraction reaches @p q
     * (0..1). Samples in the overflow bucket saturate to the last
     * bound; an empty histogram yields 0.
     */
    u64 quantile(double q) const;

    void reset();

    /**
     * Export into the uniform stats namespace: "<prefix>.le_<bound>"
     * per bucket, plus "<prefix>.overflow", "<prefix>.samples" and
     * "<prefix>.mean".
     */
    void exportTo(class StatSet &out, const std::string &prefix) const;

  private:
    std::vector<u64> bounds_;
    std::vector<u64> counts_; // bounds_.size() + 1 entries
    u64 total_ = 0;
    double sum_ = 0.0;
};

} // namespace rix

#endif // RIX_BASE_HISTOGRAM_HH
