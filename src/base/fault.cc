#include "base/fault.hh"

#include "base/env.hh"
#include "base/log.hh"

namespace rix
{

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Ok:
        return "ok";
      case JobStatus::Divergence:
        return "divergence";
      case JobStatus::Stuck:
        return "stuck";
      case JobStatus::Timeout:
        return "timeout";
      case JobStatus::Transient:
        return "transient";
      case JobStatus::Crash:
        return "crash";
      case JobStatus::Skipped:
        return "skipped";
      case JobStatus::Invalid:
        return "invalid";
    }
    return "unknown";
}

bool
jobStatusFromName(const std::string &name, JobStatus *out)
{
    static const JobStatus all[] = {
        JobStatus::Ok,      JobStatus::Divergence, JobStatus::Stuck,
        JobStatus::Timeout, JobStatus::Transient,  JobStatus::Crash,
        JobStatus::Skipped, JobStatus::Invalid};
    for (JobStatus s : all) {
        if (name == jobStatusName(s)) {
            *out = s;
            return true;
        }
    }
    return false;
}

bool
jobStatusIsTransient(JobStatus s)
{
    // Wall-clock timeouts depend on host load, not on the job, so they
    // are retryable; everything else that failed is a deterministic
    // property of the job (divergence, stuck pipeline, crash) or of the
    // request (invalid) and retrying would only repeat it.
    return s == JobStatus::Transient || s == JobStatus::Timeout;
}

u64
FaultPolicy::backoffMs(unsigned attempt) const
{
    if (attempt == 0 || backoffBaseMs == 0)
        return 0;
    u64 ms = backoffBaseMs;
    for (unsigned i = 1; i < attempt && ms < backoffCapMs; ++i)
        ms *= 2;
    return ms < backoffCapMs ? ms : backoffCapMs;
}

FaultPolicy
FaultPolicy::fromEnv(bool strict_dflt)
{
    FaultPolicy p;
    p.strict = strict_dflt;
    // Strict-validation policy: a mistyped knob must never silently
    // run with a default (a sweep "with a timeout" that actually has
    // none is exactly the silent misconfiguration class ISSUE 3
    // eliminated). Zero is rejected for the timeout — a 0ms deadline
    // would time every job out; use unset to disable the watchdog.
    p.timeoutMs = envPositiveCount("RIX_TIMEOUT_MS", 0);
    const u64 r = envNonNegativeCount("RIX_RETRIES", p.retries);
    if (r > 100)
        rix_fatal("RIX_RETRIES: %llu retries is not a sane budget "
                  "(max 100)", (unsigned long long)r);
    p.retries = unsigned(r);
    return p;
}

} // namespace rix
