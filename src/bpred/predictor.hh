/**
 * @file
 * Front-end branch prediction unit: hybrid direction predictor + BTB +
 * RAS, plus the per-instruction checkpoint needed for squash repair.
 */

#ifndef RIX_BPRED_PREDICTOR_HH
#define RIX_BPRED_PREDICTOR_HH

#include "bpred/btb.hh"
#include "bpred/direction.hh"
#include "isa/inst.hh"

namespace rix
{

struct BranchPredictorParams
{
    HybridPredictor::Params hybrid;
    unsigned btbEntries = 4096;
    unsigned btbAssoc = 4;
    unsigned rasEntries = 32;
};

/** Everything the pipeline must remember about one prediction. */
struct BranchPrediction
{
    bool isControl = false;
    bool predTaken = false;
    InstAddr predTarget = 0;   // meaningful when predTaken
    HybridPredictor::Prediction dir; // direction checkpoint
    ReturnAddressStack::Checkpoint rasBefore;
    unsigned callDepth = 0;    // RAS TOS at fetch (IT index component)
};

class BranchPredictorUnit
{
  public:
    explicit BranchPredictorUnit(const BranchPredictorParams &params);

    /** Reconfigure every component and return to the power-on state. */
    void reset(const BranchPredictorParams &params);

    /**
     * Predict the next PC for @p inst at @p pc, applying speculative
     * RAS/history updates.
     * @return predicted next PC.
     */
    InstAddr predict(const Instruction &inst, InstAddr pc,
                     BranchPrediction *out);

    /** Train at retirement. */
    void update(const Instruction &inst, InstAddr pc,
                const BranchPrediction &pred, bool taken,
                InstAddr actual_target);

    /** Restore to the state before a given prediction (full undo). */
    void repairBefore(const BranchPrediction &pred);

    /**
     * Re-apply an instruction's own front-end effect with its actual
     * outcome (used after repairBefore when recovery resumes *after*
     * the squashing instruction).
     */
    void applyOutcome(const Instruction &inst, InstAddr pc, bool taken);

    unsigned callDepth() const { return ras.depth(); }

    Btb &btb() { return btbUnit; }
    HybridPredictor &direction() { return hybrid; }
    ReturnAddressStack &returnStack() { return ras; }

  private:
    HybridPredictor hybrid;
    Btb btbUnit;
    ReturnAddressStack ras;
};

} // namespace rix

#endif // RIX_BPRED_PREDICTOR_HH
