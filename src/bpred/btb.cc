#include "bpred/btb.hh"

#include "base/bitutil.hh"
#include "base/log.hh"

namespace rix
{

Btb::Btb(unsigned entries, unsigned assoc_) { reset(entries, assoc_); }

void
Btb::reset(unsigned entries, unsigned assoc_)
{
    if (!isPow2(entries))
        rix_fatal("BTB entries must be a power of two");
    assoc = assoc_ >= entries ? entries : assoc_;
    sets = entries / assoc;
    if (!isPow2(sets))
        rix_fatal("BTB sets must be a power of two");
    table.assign(size_t(sets) * assoc, Entry{});
    lruClock = 0;
    nHits = nMisses = 0;
}

bool
Btb::lookup(InstAddr pc, InstAddr *target)
{
    Entry *base = &table[size_t(setOf(pc)) * assoc];
    for (unsigned w = 0; w < assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == pc) {
            e.lruStamp = ++lruClock;
            *target = e.target;
            ++nHits;
            return true;
        }
    }
    ++nMisses;
    return false;
}

void
Btb::update(InstAddr pc, InstAddr target)
{
    Entry *base = &table[size_t(setOf(pc)) * assoc];
    unsigned victim = 0;
    u64 best = ~u64(0);
    for (unsigned w = 0; w < assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.lruStamp = ++lruClock;
            return;
        }
        if (!e.valid) {
            victim = w;
            best = 0;
        } else if (e.lruStamp < best) {
            best = e.lruStamp;
            victim = w;
        }
    }
    Entry &e = base[victim];
    e.valid = true;
    e.tag = pc;
    e.target = target;
    e.lruStamp = ++lruClock;
}

ReturnAddressStack::ReturnAddressStack(unsigned entries)
    : ring(entries, 0)
{
}

void
ReturnAddressStack::reset(unsigned entries)
{
    ring.assign(entries, 0);
    tos = 0;
}

void
ReturnAddressStack::push(InstAddr return_pc)
{
    ring[ringIndex(tos)] = return_pc;
    ++tos;
}

InstAddr
ReturnAddressStack::pop()
{
    if (tos == 0)
        return 0; // underflow: predict entry point, will mispredict
    --tos;
    return ring[ringIndex(tos)];
}

ReturnAddressStack::Checkpoint
ReturnAddressStack::save() const
{
    Checkpoint cp;
    cp.tos = tos;
    cp.topValue = tos > 0 ? ring[ringIndex(tos - 1)] : 0;
    return cp;
}

void
ReturnAddressStack::restore(const Checkpoint &cp)
{
    tos = cp.tos;
    if (tos > 0)
        ring[ringIndex(tos - 1)] = cp.topValue;
}

} // namespace rix
