/**
 * @file
 * Direction predictors: bimodal, gshare, and the hybrid chooser the
 * paper's front end uses (8K-entry hybrid gshare/bimodal).
 *
 * The global history register is updated speculatively at prediction
 * time; the front end checkpoints it per branch and the pipeline
 * restores it on squash (see cpu/fetch).
 */

#ifndef RIX_BPRED_DIRECTION_HH
#define RIX_BPRED_DIRECTION_HH

#include <vector>

#include "base/sat_counter.hh"
#include "base/types.hh"

namespace rix
{

/** PC-indexed 2-bit counter table. */
class BimodalPredictor
{
  public:
    explicit BimodalPredictor(unsigned entries, unsigned bits = 2);

    /** Reconfigure and return to the power-on state. */
    void reset(unsigned entries, unsigned bits = 2);

    bool predict(InstAddr pc) const;
    void update(InstAddr pc, bool taken);

    unsigned size() const { return unsigned(table.size()); }

  private:
    u32 indexOf(InstAddr pc) const { return u32(pc) & (table.size() - 1); }
    std::vector<SatCounter> table;
};

/** Global-history-xor-PC indexed 2-bit counter table. */
class GsharePredictor
{
  public:
    explicit GsharePredictor(unsigned entries, unsigned history_bits,
                             unsigned bits = 2);

    /** Reconfigure and return to the power-on state. */
    void reset(unsigned entries, unsigned history_bits, unsigned bits = 2);

    bool predict(InstAddr pc) const;
    void update(InstAddr pc, u64 history_at_predict, bool taken);

    /** Speculative history update (at prediction). */
    void speculate(bool taken);

    u64 history() const { return ghr; }
    void restoreHistory(u64 h) { ghr = h & historyMask; }

  private:
    u32
    indexOf(InstAddr pc, u64 history) const
    {
        return u32((pc ^ history) & (table.size() - 1));
    }

    std::vector<SatCounter> table;
    u64 ghr = 0;
    u64 historyMask;
};

/**
 * Hybrid predictor: per-PC chooser between bimodal and gshare
 * components. The chooser trains toward whichever component was right.
 */
class HybridPredictor
{
  public:
    struct Params
    {
        unsigned bimodalEntries = 8192;
        unsigned gshareEntries = 8192;
        unsigned historyBits = 13;
        unsigned chooserEntries = 8192;
    };

    struct Prediction
    {
        bool taken = false;
        bool usedGshare = false;
        u64 historyBefore = 0; // checkpoint for squash repair
    };

    explicit HybridPredictor(const Params &params);

    /** Reconfigure and return to the power-on state. */
    void reset(const Params &params);

    /** Predict and speculatively update global history. */
    Prediction predict(InstAddr pc);

    /** Train at retirement with the true outcome. */
    void update(InstAddr pc, const Prediction &pred, bool taken);

    /** Restore the history register after a squash. */
    void restoreHistory(u64 h) { gshare.restoreHistory(h); }

    /** Shift an outcome into the history (squash-recovery replay). */
    void speculateHistory(bool taken) { gshare.speculate(taken); }

    u64 history() const { return gshare.history(); }

  private:
    u32
    chooserIndex(InstAddr pc) const
    {
        return u32(pc) & (chooser.size() - 1);
    }

    BimodalPredictor bimodal;
    GsharePredictor gshare;
    std::vector<SatCounter> chooser;
};

} // namespace rix

#endif // RIX_BPRED_DIRECTION_HH
