/**
 * @file
 * Branch target buffer (paper: 4K entries) and return-address stack.
 *
 * The BTB caches targets of indirect jumps (direct targets are
 * available from predecode in this slot-addressed code model). The RAS
 * predicts return targets; its top-of-stack index doubles as the
 * dynamic call depth used by the integration table's opcode index.
 *
 * RAS repair uses the standard TOS + top-value checkpoint scheme: every
 * fetched instruction carries the post-fetch RAS state; squash recovery
 * restores it.
 */

#ifndef RIX_BPRED_BTB_HH
#define RIX_BPRED_BTB_HH

#include <vector>

#include "base/types.hh"

namespace rix
{

class Btb
{
  public:
    Btb(unsigned entries, unsigned assoc);

    /** Reconfigure and return to the power-on state. */
    void reset(unsigned entries, unsigned assoc);

    /** Look up a target for @p pc; returns false on miss. */
    bool lookup(InstAddr pc, InstAddr *target);

    /** Install/refresh the target of @p pc. */
    void update(InstAddr pc, InstAddr target);

    u64 hits() const { return nHits; }
    u64 misses() const { return nMisses; }

  private:
    struct Entry
    {
        bool valid = false;
        u64 tag = 0;
        InstAddr target = 0;
        u64 lruStamp = 0;
    };

    u32 setOf(InstAddr pc) const { return u32(pc) & (sets - 1); }

    unsigned sets;
    unsigned assoc;
    std::vector<Entry> table;
    u64 lruClock = 0;
    u64 nHits = 0, nMisses = 0;
};

/** Circular return-address stack with TOS checkpoint/repair. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned entries = 32);

    /** Reconfigure and return to the power-on state. */
    void reset(unsigned entries);

    void push(InstAddr return_pc);
    InstAddr pop();

    /** Current call depth (monotonic counter, not the ring index). */
    unsigned depth() const { return tos; }

    /** Checkpoint for per-branch repair. */
    struct Checkpoint
    {
        unsigned tos = 0;
        InstAddr topValue = 0;
    };

    Checkpoint save() const;
    void restore(const Checkpoint &cp);

  private:
    unsigned ringIndex(unsigned t) const { return t % unsigned(ring.size()); }

    std::vector<InstAddr> ring;
    unsigned tos = 0; // next free slot; depth counter
};

} // namespace rix

#endif // RIX_BPRED_BTB_HH
