#include "bpred/direction.hh"

#include "base/bitutil.hh"
#include "base/log.hh"

namespace rix
{

BimodalPredictor::BimodalPredictor(unsigned entries, unsigned bits)
{
    reset(entries, bits);
}

void
BimodalPredictor::reset(unsigned entries, unsigned bits)
{
    if (!isPow2(entries))
        rix_fatal("bimodal entries must be a power of two");
    table.assign(entries, SatCounter(bits, (1u << bits) / 2));
}

bool
BimodalPredictor::predict(InstAddr pc) const
{
    return table[indexOf(pc)].predictTaken();
}

void
BimodalPredictor::update(InstAddr pc, bool taken)
{
    table[indexOf(pc)].train(taken);
}

GsharePredictor::GsharePredictor(unsigned entries, unsigned history_bits,
                                 unsigned bits)
{
    reset(entries, history_bits, bits);
}

void
GsharePredictor::reset(unsigned entries, unsigned history_bits,
                       unsigned bits)
{
    if (!isPow2(entries))
        rix_fatal("gshare entries must be a power of two");
    table.assign(entries, SatCounter(bits, (1u << bits) / 2));
    historyMask = mask(history_bits);
    ghr = 0;
}

bool
GsharePredictor::predict(InstAddr pc) const
{
    return table[indexOf(pc, ghr)].predictTaken();
}

void
GsharePredictor::update(InstAddr pc, u64 history_at_predict, bool taken)
{
    table[indexOf(pc, history_at_predict)].train(taken);
}

void
GsharePredictor::speculate(bool taken)
{
    ghr = ((ghr << 1) | u64(taken)) & historyMask;
}

HybridPredictor::HybridPredictor(const Params &params)
    : bimodal(params.bimodalEntries),
      gshare(params.gshareEntries, params.historyBits)
{
    if (!isPow2(params.chooserEntries))
        rix_fatal("chooser entries must be a power of two");
    chooser.assign(params.chooserEntries, SatCounter(2, 2));
}

void
HybridPredictor::reset(const Params &params)
{
    bimodal.reset(params.bimodalEntries);
    gshare.reset(params.gshareEntries, params.historyBits);
    if (!isPow2(params.chooserEntries))
        rix_fatal("chooser entries must be a power of two");
    chooser.assign(params.chooserEntries, SatCounter(2, 2));
}

HybridPredictor::Prediction
HybridPredictor::predict(InstAddr pc)
{
    Prediction p;
    p.historyBefore = gshare.history();
    const bool g = gshare.predict(pc);
    const bool b = bimodal.predict(pc);
    p.usedGshare = chooser[chooserIndex(pc)].predictTaken();
    p.taken = p.usedGshare ? g : b;
    gshare.speculate(p.taken);
    return p;
}

void
HybridPredictor::update(InstAddr pc, const Prediction &pred, bool taken)
{
    const bool g = true; // recompute component predictions at train time
    (void)g;
    // Train both components on the outcome.
    bimodal.update(pc, taken);
    gshare.update(pc, pred.historyBefore, taken);
    // Chooser trains toward the component that was correct. We compare
    // against the prediction each component *would have made*; since
    // counters may have moved since prediction, we use the recorded
    // hybrid choice: if the overall prediction was wrong, bias away
    // from the used component, otherwise toward it.
    SatCounter &c = chooser[chooserIndex(pc)];
    const bool correct = pred.taken == taken;
    if (pred.usedGshare)
        c.train(correct);
    else
        c.train(!correct);
}

} // namespace rix
