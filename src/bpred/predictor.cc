#include "bpred/predictor.hh"

namespace rix
{

BranchPredictorUnit::BranchPredictorUnit(const BranchPredictorParams &params)
    : hybrid(params.hybrid), btbUnit(params.btbEntries, params.btbAssoc),
      ras(params.rasEntries)
{
}

void
BranchPredictorUnit::reset(const BranchPredictorParams &params)
{
    hybrid.reset(params.hybrid);
    btbUnit.reset(params.btbEntries, params.btbAssoc);
    ras.reset(params.rasEntries);
}

InstAddr
BranchPredictorUnit::predict(const Instruction &inst, InstAddr pc,
                             BranchPrediction *out)
{
    // Fill the caller's record in place (it is 56 bytes; a local copy
    // would be written twice for every fetched instruction).
    BranchPrediction local;
    BranchPrediction &p = out ? *out : local;
    p.isControl = false;
    p.predTaken = false;
    p.predTarget = 0;
    p.rasBefore = ras.save();
    p.callDepth = ras.depth();
    p.dir.historyBefore = hybrid.history();

    InstAddr next = pc + 1;
    switch (inst.cls()) {
      case InstClass::Jump:
        p.isControl = true;
        p.predTaken = true;
        p.predTarget = InstAddr(u32(inst.imm));
        next = p.predTarget;
        break;
      case InstClass::Call:
        p.isControl = true;
        p.predTaken = true;
        p.predTarget = InstAddr(u32(inst.imm));
        ras.push(pc + 1);
        next = p.predTarget;
        break;
      case InstClass::Return:
        p.isControl = true;
        p.predTaken = true;
        p.predTarget = ras.pop();
        next = p.predTarget;
        break;
      case InstClass::IndirectJump: {
        p.isControl = true;
        p.predTaken = true;
        InstAddr tgt = pc + 1;
        btbUnit.lookup(pc, &tgt);
        p.predTarget = tgt;
        next = tgt;
        break;
      }
      case InstClass::Branch:
        p.isControl = true;
        p.dir = hybrid.predict(pc);
        p.predTaken = p.dir.taken;
        p.predTarget = InstAddr(u32(inst.imm));
        next = p.predTaken ? p.predTarget : pc + 1;
        break;
      default:
        break;
    }
    return next;
}

void
BranchPredictorUnit::update(const Instruction &inst, InstAddr pc,
                            const BranchPrediction &pred, bool taken,
                            InstAddr actual_target)
{
    switch (inst.cls()) {
      case InstClass::Branch:
        hybrid.update(pc, pred.dir, taken);
        break;
      case InstClass::IndirectJump:
        btbUnit.update(pc, actual_target);
        break;
      default:
        break;
    }
}

void
BranchPredictorUnit::repairBefore(const BranchPrediction &pred)
{
    hybrid.restoreHistory(pred.dir.historyBefore);
    ras.restore(pred.rasBefore);
}

void
BranchPredictorUnit::applyOutcome(const Instruction &inst, InstAddr pc,
                                  bool taken)
{
    switch (inst.cls()) {
      case InstClass::Branch:
        hybrid.speculateHistory(taken);
        break;
      case InstClass::Call:
        ras.push(pc + 1);
        break;
      case InstClass::Return:
        ras.pop();
        break;
      default:
        break;
    }
}

} // namespace rix
