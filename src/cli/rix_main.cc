/**
 * @file
 * `rix` — the declarative scenario driver.
 *
 * Runs any experiment the simulator can express without recompiling:
 * a JSON scenario spec names the workloads, scale, run limits, and a
 * grid of machine-configuration overrides; rix expands it, executes it
 * across the RIX_JOBS thread pool, and renders the results (generic
 * JSON-lines/CSV stat rows, or one of the built-in paper-figure
 * tables). The committed specs under examples/scenarios/ reproduce
 * the four figure benches bit-identically.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "base/env.hh"
#include "base/json.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/fuzz.hh"
#include "sim/scenario.hh"
#include "sim/validate.hh"
#include "store/compare.hh"
#include "store/sweep_store.hh"
#include "workload/workload.hh"

namespace
{

int
usage(FILE *out)
{
    fprintf(out,
            "rix — declarative simulation scenario driver\n"
            "\n"
            "usage:\n"
            "  rix run <spec.json> [--out FILE] [--jobs N] [--scale S]\n"
            "          [--store FILE]             run a scenario spec\n"
            "  rix trace <workload> [options]     one traced detailed run\n"
            "  rix resume <store> [options]       finish a journaled sweep\n"
            "  rix compare <A> <B> [options]      regression-gate two sweeps\n"
            "  rix fuzz [options]                 differential fuzzing\n"
            "  rix serve <socket> [options]       simulation daemon\n"
            "  rix submit <socket> [request...]   send requests to a daemon\n"
            "  rix validate <spec.json>...        parse + validate only\n"
            "  rix list-workloads                 registered workloads\n"
            "  rix help                           this text\n"
            "\n"
            "run options (strictly positive integers; garbage is fatal):\n"
            "  --jobs N     simulation worker threads (overrides RIX_JOBS;\n"
            "               1 = serial)\n"
            "  --scale S    workload scale factor (overrides RIX_SCALE and\n"
            "               the spec)\n"
            "  --store FILE journal every completed job into a new\n"
            "               crash-recoverable result store (file must not\n"
            "               exist; jsonl/csv renders only)\n"
            "\n"
            "trace options (default machine configuration, Konata or\n"
            "JSON-lines pipeline trace; see README 'Observability'):\n"
            "  --scale S          workload scale factor (default 1)\n"
            "  --start N          first retired instruction to trace\n"
            "                     (default 0)\n"
            "  --count N          trace window length in retired\n"
            "                     instructions (default 100000)\n"
            "  --format F         konata (default) | jsonl\n"
            "  --out FILE         trace destination (default\n"
            "                     rix_trace.txt)\n"
            "  --metrics-every N  also record interval metrics every N\n"
            "                     simulated cycles\n"
            "  --metrics-out FILE metrics destination (default\n"
            "                     rix_metrics.jsonl)\n"
            "  --max-retired N    run budget (default: the run stops at\n"
            "                     the end of the trace window)\n"
            "\n"
            "resume options:\n"
            "  --out FILE     render destination (default stdout)\n"
            "  --jobs N       simulation worker threads\n"
            "  --ignore-rev   accept a store written by another revision\n"
            "  a torn tail from a killed run is truncated on open; only\n"
            "  the jobs missing from the journal are re-run, and the\n"
            "  merged render is bit-identical to an uninterrupted run\n"
            "\n"
            "compare options (A = baseline store, B = candidate store):\n"
            "  --tolerance F      allowed fractional aggregate-KIPS drift\n"
            "                     (default 0.25)\n"
            "  --sim-only         gate simulated fields only, skip the\n"
            "                     throughput tier\n"
            "  --require-complete demand every job journaled ok in both\n"
            "  --out FILE         trajectory destination (default stdout)\n"
            "  exit status: 0 identical within tolerance; 1 throughput\n"
            "  drift; 2 simulated-field divergence; 3 operational error\n"
            "  (including usage — 2 always means divergence)\n"
            "\n"
            "fuzz options:\n"
            "  --seeds N        random programs to run (default 100)\n"
            "  --first-seed S   first generator seed (default 1)\n"
            "  --panel FILE     scenario spec supplying the config panel\n"
            "                   (default: built-in 4-point panel)\n"
            "  --config LABEL   restrict the panel to one point\n"
            "  --out FILE       reproducer path on divergence\n"
            "                   (default rix_fuzz_repro.txt)\n"
            "  --max-retired N  per-run retired-instruction budget\n"
            "  --no-minimize    skip shrinking the failing program\n"
            "  --jobs N         worker threads (overrides RIX_JOBS)\n"
            "  --guided         coverage-guided mode: keep a seed corpus,\n"
            "                   run the whole budget, dedupe failures\n"
            "  --corpus DIR     journal corpus entries to DIR and reload\n"
            "                   them next run (implies --guided)\n"
            "  --explore PCT    guided slots given to fresh seeds, 0-100\n"
            "                   (default 50; the rest mutate the corpus)\n"
            "  exit status: 0 no divergence; 1 divergence (reproducer\n"
            "  written — its presence disambiguates from fatal\n"
            "  configuration errors, which also exit 1); 2 usage error\n"
            "\n"
            "serve options (newline-delimited JSON protocol; see\n"
            "serve/proto.hh and README.md):\n"
            "  --jobs N         simulation worker threads\n"
            "  --queue N        max outstanding jobs before backpressure\n"
            "                   (default 64; excess gets 'overloaded')\n"
            "  --cache-bytes N  program+checkpoint LRU byte budget\n"
            "                   (default 256 MiB)\n"
            "  --allow-inject   honor the 'inject' request field (fault\n"
            "                   drills; otherwise rejected as invalid)\n"
            "\n"
            "submit: sends each argument as one request line (stdin when\n"
            "  none), prints one response line each; exit 0 if every\n"
            "  status is 'ok', 3 otherwise, 1 on connection failure;\n"
            "  transient drops (ECONNRESET, daemon restarts) are retried\n"
            "  with bounded exponential backoff, resending only the\n"
            "  unanswered requests (at-least-once execution)\n"
            "\n"
            "environment (legacy overrides, validated):\n"
            "  RIX_SCALE       workload scale factor (overrides the spec)\n"
            "  RIX_BENCH       comma-separated workload subset\n"
            "  RIX_JOBS        simulation worker threads (default:\n"
            "                  hardware concurrency; 1 = serial)\n"
            "  RIX_TIMEOUT_MS  per-job wall-clock watchdog (0 = off)\n"
            "  RIX_RETRIES     retry budget for transient failures\n"
            "                  (default 2)\n"
            "  RIX_CACHE_BYTES serve cache budget\n"
            "  RIX_QUEUE_DEPTH serve admission bound\n"
            "  RIX_STORE_DIR   serve: journal every completed run into a\n"
            "                  result store under this directory (must\n"
            "                  exist, be a directory, and be writable)\n"
            "  RIX_TRACE       scenario runs: enable tracing to this\n"
            "                  file (a .jsonl suffix selects JSON lines,\n"
            "                  anything else Konata text)\n"
            "  RIX_TRACE_START first retired instruction to trace\n"
            "  RIX_TRACE_COUNT trace window length (strictly positive)\n"
            "  RIX_METRICS_EVERY scenario runs: enable interval metrics\n"
            "                  every N simulated cycles (positive)\n"
            "\n"
            "spec format: see examples/scenarios/*.json and README.md\n");
    return out == stderr ? 2 : 0;
}

int
cmdRun(int argc, char **argv)
{
    const char *specPath = nullptr;
    const char *outPath = nullptr;
    const char *storePath = nullptr;
    bool strict = false;
    for (int i = 0; i < argc; ++i) {
        if (strcmp(argv[i], "--strict") == 0) {
            strict = true;
        } else if (strcmp(argv[i], "--out") == 0) {
            if (i + 1 >= argc) {
                fprintf(stderr, "rix run: --out needs a file argument\n");
                return 2;
            }
            outPath = argv[++i];
        } else if (strcmp(argv[i], "--store") == 0) {
            if (i + 1 >= argc) {
                fprintf(stderr,
                        "rix run: --store needs a file argument\n");
                return 2;
            }
            storePath = argv[++i];
        } else if (strcmp(argv[i], "--jobs") == 0 ||
                   strcmp(argv[i], "--scale") == 0) {
            // Same strict-positive contract as the RIX_* knobs: zero
            // or garbage is fatal, naming the flag. The validated
            // value is pushed into the environment variable it
            // overrides, so every downstream reader (spec parsing,
            // SweepRunner) sees one consistent setting.
            const bool jobs = argv[i][2] == 'j';
            if (i + 1 >= argc) {
                fprintf(stderr, "rix run: %s needs a positive integer "
                        "argument\n", argv[i]);
                return 2;
            }
            const char *flag = jobs ? "rix run --jobs" : "rix run --scale";
            rix::parsePositiveCount(flag, argv[i + 1]);
            setenv(jobs ? "RIX_JOBS" : "RIX_SCALE", argv[++i],
                   /*overwrite=*/1);
        } else if (argv[i][0] == '-') {
            fprintf(stderr, "rix run: unknown option '%s'\n", argv[i]);
            return 2;
        } else if (!specPath) {
            specPath = argv[i];
        } else {
            fprintf(stderr, "rix run: exactly one spec file expected\n");
            return 2;
        }
    }
    if (!specPath) {
        fprintf(stderr, "rix run: missing spec file\n");
        return 2;
    }

    FILE *out = stdout;
    if (outPath) {
        out = fopen(outPath, "w");
        if (!out) {
            fprintf(stderr, "rix run: cannot write '%s'\n", outPath);
            return 1;
        }
    }
    // Fault-contained by default for the row renders: K failing jobs
    // leave the other N-K rows intact, each row carrying its status.
    // --strict restores fail-fast; the figure renders always fail
    // fast (runScenarioFile). RIX_TIMEOUT_MS / RIX_RETRIES configure
    // the watchdog and retry budget (strictly validated).
    const rix::FaultPolicy policy = rix::FaultPolicy::fromEnv(strict);
    const int rc =
        storePath
            ? rix::runScenarioFileStored(specPath, storePath, out, policy)
            : rix::runScenarioFile(specPath, out, &policy);
    if (out != stdout)
        fclose(out);
    return rc;
}

int
cmdTrace(int argc, char **argv)
{
    rix::TraceConfig tcfg;
    tcfg.enabled = true;
    rix::MetricsConfig mcfg;
    rix::u64 maxRetired = 0; // 0: bounded by the trace window
    const char *workload = nullptr;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto needValue = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                fprintf(stderr, "rix trace: %s needs an argument\n",
                        what);
                exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scale") {
            const char *v = needValue("--scale");
            rix::parsePositiveCount("rix trace --scale", v);
            setenv("RIX_SCALE", v, /*overwrite=*/1);
        } else if (arg == "--start") {
            tcfg.start = rix::parseNonNegativeCount("rix trace --start",
                                                    needValue("--start"));
        } else if (arg == "--count") {
            tcfg.count = rix::parsePositiveCount("rix trace --count",
                                                 needValue("--count"));
        } else if (arg == "--format") {
            tcfg.format = needValue("--format");
            if (!rix::traceFormatValid(tcfg.format)) {
                fprintf(stderr, "rix trace: --format must be 'konata' "
                                "or 'jsonl', got '%s'\n",
                        tcfg.format.c_str());
                return 2;
            }
        } else if (arg == "--out") {
            tcfg.out = needValue("--out");
        } else if (arg == "--metrics-every") {
            mcfg.enabled = true;
            mcfg.every = rix::parsePositiveCount(
                "rix trace --metrics-every", needValue("--metrics-every"));
        } else if (arg == "--metrics-out") {
            mcfg.out = needValue("--metrics-out");
        } else if (arg == "--max-retired") {
            maxRetired = rix::parsePositiveCount("rix trace --max-retired",
                                                 needValue("--max-retired"));
        } else if (arg[0] == '-') {
            fprintf(stderr, "rix trace: unknown option '%s'\n", argv[i]);
            return 2;
        } else if (!workload) {
            workload = argv[i];
        } else {
            fprintf(stderr, "rix trace: exactly one workload expected\n");
            return 2;
        }
    }
    if (!workload) {
        fprintf(stderr, "rix trace: missing workload (see `rix "
                        "list-workloads`)\n");
        return 2;
    }
    const std::vector<std::string> names = rix::workloadNames();
    if (std::find(names.begin(), names.end(), workload) == names.end()) {
        fprintf(stderr, "rix trace: unknown workload '%s' (see `rix "
                        "list-workloads`)\n", workload);
        return 2;
    }

    rix::SimJob job;
    job.workload = workload;
    job.scale = rix::envPositiveCount("RIX_SCALE", 1);
    if (maxRetired) {
        job.maxRetired = maxRetired;
    } else if (tcfg.end() != ~rix::u64(0) && tcfg.end() < job.maxRetired) {
        // The run only needs to reach the end of the trace window.
        job.maxRetired = tcfg.end();
    }

    std::string err;
    std::unique_ptr<rix::TraceSink> sink =
        rix::openTraceSink(tcfg, tcfg.out, &err);
    if (!sink) {
        fprintf(stderr, "rix trace: %s\n", err.c_str());
        return 1;
    }
    rix::TraceSink *counters = sink.get();
    job.trace = std::move(sink);
    job.traceStart = tcfg.start;
    job.traceCount = tcfg.count;
    if (mcfg.enabled)
        job.metrics = std::make_shared<rix::MetricsRecorder>(mcfg.every);

    const std::vector<rix::SimJob> jobs{job};
    const std::vector<rix::SimJobResult> results =
        rix::SweepRunner().run(jobs);
    const rix::SimReport &rep = results[0].report;

    if (job.metrics) {
        std::string merr;
        if (!job.metrics->writeJsonl(mcfg.out,
                                     {{"workload", job.workload}},
                                     &merr)) {
            fprintf(stderr, "rix trace: %s\n", merr.c_str());
            return 1;
        }
    }

    printf("{\"workload\": \"%s\", \"scale\": %llu, \"out\": \"%s\", "
           "\"format\": \"%s\", \"events\": %llu, "
           "\"traced_retired\": %llu, \"traced_squashed\": %llu, "
           "\"retired\": %llu, \"cycles\": %llu",
           job.workload.c_str(), (unsigned long long)job.scale,
           tcfg.out.c_str(), tcfg.format.c_str(),
           (unsigned long long)counters->numEvents(),
           (unsigned long long)counters->numRetired(),
           (unsigned long long)counters->numSquashed(),
           (unsigned long long)rep.core.retired,
           (unsigned long long)rep.core.cycles);
    if (job.metrics)
        printf(", \"metrics_out\": \"%s\", \"metrics_intervals\": %zu",
               mcfg.out.c_str(), job.metrics->intervals().size());
    printf("}\n");
    return 0;
}

int
cmdResume(int argc, char **argv)
{
    const char *storePath = nullptr;
    const char *outPath = nullptr;
    rix::ResumeOptions opts;
    for (int i = 0; i < argc; ++i) {
        if (strcmp(argv[i], "--ignore-rev") == 0) {
            opts.ignoreRev = true;
        } else if (strcmp(argv[i], "--out") == 0) {
            if (i + 1 >= argc) {
                fprintf(stderr,
                        "rix resume: --out needs a file argument\n");
                return 2;
            }
            outPath = argv[++i];
        } else if (strcmp(argv[i], "--jobs") == 0) {
            if (i + 1 >= argc) {
                fprintf(stderr, "rix resume: --jobs needs a positive "
                                "integer argument\n");
                return 2;
            }
            rix::parsePositiveCount("rix resume --jobs", argv[i + 1]);
            setenv("RIX_JOBS", argv[++i], /*overwrite=*/1);
        } else if (argv[i][0] == '-') {
            fprintf(stderr, "rix resume: unknown option '%s'\n", argv[i]);
            return 2;
        } else if (!storePath) {
            storePath = argv[i];
        } else {
            fprintf(stderr, "rix resume: exactly one store expected\n");
            return 2;
        }
    }
    if (!storePath) {
        fprintf(stderr, "rix resume: missing store file\n");
        return 2;
    }
    FILE *out = stdout;
    if (outPath) {
        out = fopen(outPath, "w");
        if (!out) {
            fprintf(stderr, "rix resume: cannot write '%s'\n", outPath);
            return 1;
        }
    }
    // No --scale / RIX_SCALE override: the store pins the resolved
    // scale and workloads, resume reinstalls them itself.
    const rix::FaultPolicy policy = rix::FaultPolicy::fromEnv(false);
    const int rc = rix::resumeStoreFile(storePath, out, policy, opts);
    if (out != stdout)
        fclose(out);
    return rc;
}

int
cmdCompare(int argc, char **argv)
{
    // Usage errors exit 3, not the usual 2: in this one subcommand 2
    // is the divergence verdict and must stay unambiguous for CI.
    const char *pathA = nullptr;
    const char *pathB = nullptr;
    const char *outPath = nullptr;
    rix::CompareOptions opts;
    for (int i = 0; i < argc; ++i) {
        if (strcmp(argv[i], "--sim-only") == 0) {
            opts.simOnly = true;
        } else if (strcmp(argv[i], "--require-complete") == 0) {
            opts.requireComplete = true;
        } else if (strcmp(argv[i], "--tolerance") == 0) {
            if (i + 1 >= argc) {
                fprintf(stderr, "rix compare: --tolerance needs a "
                                "number argument\n");
                return 3;
            }
            char *end = nullptr;
            opts.tolerance = strtod(argv[++i], &end);
            if (!end || *end != '\0' || end == argv[i] ||
                !(opts.tolerance >= 0)) {
                fprintf(stderr, "rix compare: --tolerance wants a "
                                "non-negative number, got '%s'\n",
                        argv[i]);
                return 3;
            }
        } else if (strcmp(argv[i], "--out") == 0) {
            if (i + 1 >= argc) {
                fprintf(stderr,
                        "rix compare: --out needs a file argument\n");
                return 3;
            }
            outPath = argv[++i];
        } else if (argv[i][0] == '-') {
            fprintf(stderr, "rix compare: unknown option '%s'\n",
                    argv[i]);
            return 3;
        } else if (!pathA) {
            pathA = argv[i];
        } else if (!pathB) {
            pathB = argv[i];
        } else {
            fprintf(stderr,
                    "rix compare: exactly two stores expected\n");
            return 3;
        }
    }
    if (!pathA || !pathB) {
        fprintf(stderr, "rix compare: need a baseline store and a "
                        "candidate store\n");
        return 3;
    }
    FILE *out = stdout;
    if (outPath) {
        out = fopen(outPath, "w");
        if (!out) {
            fprintf(stderr, "rix compare: cannot write '%s'\n", outPath);
            return 3;
        }
    }
    const int rc = rix::compareStores(pathA, pathB, opts, out);
    if (out != stdout)
        fclose(out);
    return rc;
}

int
cmdFuzz(int argc, char **argv)
{
    rix::FuzzOptions opts;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto needValue = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                fprintf(stderr, "rix fuzz: %s needs an argument\n", what);
                exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seeds") {
            opts.seeds = rix::parsePositiveCount("rix fuzz --seeds",
                                                 needValue("--seeds"));
        } else if (arg == "--first-seed") {
            opts.firstSeed = rix::parsePositiveCount(
                "rix fuzz --first-seed", needValue("--first-seed"));
        } else if (arg == "--panel") {
            opts.panelPath = needValue("--panel");
        } else if (arg == "--config") {
            opts.onlyConfig = needValue("--config");
            if (opts.onlyConfig.empty()) {
                // Panel point labels are never empty (the scenario
                // parser rejects them), so an empty filter is always a
                // quoting mistake — say so instead of "matches no
                // panel point".
                fprintf(stderr, "rix fuzz: --config needs a non-empty "
                                "label (panel point labels are never "
                                "empty)\n");
                return 2;
            }
        } else if (arg == "--guided") {
            opts.guided = true;
        } else if (arg == "--corpus") {
            opts.corpusDir = needValue("--corpus");
            opts.guided = true;
        } else if (arg == "--explore") {
            const char *v = needValue("--explore");
            char *end = nullptr;
            const unsigned long pct = strtoul(v, &end, 10);
            if (!end || *end != '\0' || end == v || pct > 100) {
                fprintf(stderr, "rix fuzz: --explore wants a percentage "
                                "0-100, got '%s'\n", v);
                return 2;
            }
            opts.explorePct = unsigned(pct);
            opts.guided = true;
        } else if (arg == "--out") {
            opts.reproPath = needValue("--out");
        } else if (arg == "--max-retired") {
            opts.maxRetired = rix::parsePositiveCount(
                "rix fuzz --max-retired", needValue("--max-retired"));
        } else if (arg == "--no-minimize") {
            opts.minimize = false;
        } else if (arg == "--jobs") {
            const char *v = needValue("--jobs");
            rix::parsePositiveCount("rix fuzz --jobs", v);
            setenv("RIX_JOBS", v, /*overwrite=*/1);
        } else {
            fprintf(stderr, "rix fuzz: unknown option '%s'\n",
                    argv[i]);
            return 2;
        }
    }

    const rix::FuzzResult res = rix::runFuzz(opts);
    if (res.failed) {
        fprintf(stderr, "rix fuzz: seed %llu config '%s':\n%s",
                (unsigned long long)res.failure.seed,
                res.failure.configLabel.c_str(),
                res.failure.report.format().c_str());
        if (opts.minimize)
            fprintf(stderr,
                    "rix fuzz: minimized to %zu live instructions; "
                    "reproducer written to %s\n",
                    res.failure.liveInsts, res.reproFile.c_str());
        else
            fprintf(stderr,
                    "rix fuzz: %zu live instructions (not minimized); "
                    "reproducer written to %s\n",
                    res.failure.liveInsts, res.reproFile.c_str());
    }
    printf("{\"fuzz\": \"rix\", \"seeds\": %llu, \"first_seed\": %llu, "
           "\"points\": %zu, \"runs\": %llu, \"divergences\": %d, "
           "\"truncated\": %llu, \"fault_injected\": %d, "
           "\"guided\": %d, \"coverage_bits\": %zu, "
           "\"coverage_sig\": \"%016llx\", \"failures\": %llu, "
           "\"unique_failures\": %llu, \"corpus_entries\": %zu, "
           "\"corpus_loaded\": %zu}\n",
           (unsigned long long)res.programs,
           (unsigned long long)opts.firstSeed, res.points,
           (unsigned long long)res.runs, res.failed ? 1 : 0,
           (unsigned long long)res.truncated,
           rix::buildHasInjectedFault() ? 1 : 0,
           (opts.guided || !opts.corpusDir.empty()) ? 1 : 0,
           res.coverage.popcount(),
           (unsigned long long)res.coverage.signature(),
           (unsigned long long)res.failures,
           (unsigned long long)res.uniqueFailures, res.corpusEntries,
           res.corpusLoaded);
    return res.failed ? 1 : 0;
}

int
cmdServe(int argc, char **argv)
{
    // Environment first (fatal on garbage), flags override.
    rix::ServeOptions opts = rix::ServeOptions::fromEnv();
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto needValue = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                fprintf(stderr, "rix serve: %s needs an argument\n", what);
                exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            opts.workers = unsigned(rix::parsePositiveCount(
                "rix serve --jobs", needValue("--jobs")));
        } else if (arg == "--queue") {
            opts.queueDepth = size_t(rix::parsePositiveCount(
                "rix serve --queue", needValue("--queue")));
        } else if (arg == "--cache-bytes") {
            opts.cacheBytes = size_t(rix::parsePositiveCount(
                "rix serve --cache-bytes", needValue("--cache-bytes")));
        } else if (arg == "--allow-inject") {
            opts.allowInject = true;
        } else if (arg[0] == '-') {
            fprintf(stderr, "rix serve: unknown option '%s'\n", argv[i]);
            return 2;
        } else if (opts.socketPath.empty()) {
            opts.socketPath = arg;
        } else {
            fprintf(stderr, "rix serve: exactly one socket path "
                            "expected\n");
            return 2;
        }
    }
    if (opts.socketPath.empty()) {
        fprintf(stderr, "rix serve: missing socket path\n");
        return 2;
    }
    return rix::runServe(opts);
}

int
cmdSubmit(int argc, char **argv)
{
    if (argc < 1) {
        fprintf(stderr, "rix submit: missing socket path\n");
        return 2;
    }

    // Collect the whole batch (arguments, or stdin lines), then hand
    // it to submitBatch: transient transport failures — ECONNRESET, a
    // daemon restart mid-batch, short writes — are absorbed by
    // reconnect-with-backoff and resend of the unanswered requests,
    // instead of failing the whole batch.
    std::vector<std::string> lines;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            if (argv[i][0] != '\0')
                lines.push_back(argv[i]);
    } else {
        std::string line;
        int c;
        while ((c = getchar()) != EOF) {
            if (c == '\n') {
                if (!line.empty())
                    lines.push_back(line);
                line.clear();
            } else {
                line += char(c);
            }
        }
        if (!line.empty())
            lines.push_back(line);
    }

    bool allOk = true;
    const rix::SubmitOutcome outcome = rix::submitBatch(
        argv[0], lines, [&allOk](const std::string &resp) {
            printf("%s\n", resp.c_str());
            std::string perr;
            const rix::JsonValue doc = rix::JsonValue::parse(resp, &perr);
            const rix::JsonValue *status =
                perr.empty() && doc.isObject() ? doc.find("status")
                                               : nullptr;
            if (!status || !status->isString() ||
                status->asString() != "ok")
                allOk = false;
        });
    if (outcome.reconnects)
        fprintf(stderr, "rix submit: recovered from %u connection "
                        "drop%s\n", outcome.reconnects,
                outcome.reconnects == 1 ? "" : "s");
    if (!outcome.complete) {
        // Diagnostic on stderr only: stdout carries response JSON or
        // nothing at all, so `rix submit ... | jq` never sees a
        // partial document.
        fprintf(stderr, "rix submit: %s (%zu of %zu responses "
                        "received)\n", outcome.error.c_str(),
                outcome.answered, lines.size());
        return 1;
    }
    return allOk ? 0 : 3;
}

int
cmdValidate(int argc, char **argv)
{
    if (argc == 0) {
        fprintf(stderr, "rix validate: missing spec file\n");
        return 2;
    }
    for (int i = 0; i < argc; ++i) {
        // parseScenario and requireValidCoreParams are fatal (exit 1)
        // on any problem, naming the field; reaching the summary line
        // means the spec is fully runnable.
        const rix::ScenarioSpec spec =
            rix::parseScenario(rix::readScenarioFile(argv[i]));
        for (const rix::ScenarioConfig &cfg : spec.configs)
            rix::requireValidCoreParams(cfg.params,
                                        "config '" + cfg.label + "'");
        printf("%s: OK: %zu workloads x %zu configs = %zu jobs "
               "(scale %llu, render %s)\n",
               argv[i], spec.workloads.size(), spec.configs.size(),
               spec.workloads.size() * spec.configs.size(),
               (unsigned long long)spec.scale, spec.render.c_str());
    }
    return 0;
}

int
cmdListWorkloads()
{
    for (const rix::WorkloadInfo &w : rix::allWorkloads())
        printf("%-10s %s\n", w.name, w.description);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(stderr);
    const std::string cmd = argv[1];
    if (cmd == "run")
        return cmdRun(argc - 2, argv + 2);
    if (cmd == "trace")
        return cmdTrace(argc - 2, argv + 2);
    if (cmd == "resume")
        return cmdResume(argc - 2, argv + 2);
    if (cmd == "compare")
        return cmdCompare(argc - 2, argv + 2);
    if (cmd == "fuzz")
        return cmdFuzz(argc - 2, argv + 2);
    if (cmd == "serve")
        return cmdServe(argc - 2, argv + 2);
    if (cmd == "submit")
        return cmdSubmit(argc - 2, argv + 2);
    if (cmd == "validate")
        return cmdValidate(argc - 2, argv + 2);
    if (cmd == "list-workloads")
        return cmdListWorkloads();
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return usage(stdout);
    fprintf(stderr, "rix: unknown command '%s'\n", cmd.c_str());
    return usage(stderr);
}
