/**
 * @file
 * Command-line assembler runner: assemble a .s file and execute it on
 * the functional emulator and/or the cycle-level core.
 *
 *   $ ./build/examples/run_asm program.s [off|squash|general|opcode|reverse]
 *
 * Prints the program's emitted output (syscall 1), final register
 * state, and (when simulated) the machine statistics.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "assembler/parser.hh"
#include "sim/simulator.hh"

using namespace rix;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        fprintf(stderr,
                "usage: %s program.s [off|squash|general|opcode|reverse]\n",
                argv[0]);
        return 2;
    }

    std::ifstream in(argv[1]);
    if (!in) {
        fprintf(stderr, "cannot open %s\n", argv[1]);
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();

    std::string err;
    bool ok = false;
    Program prog = assembleText(ss.str(), argv[1], &err, &ok);
    if (!ok) {
        fprintf(stderr, "assembly failed: %s\n", err.c_str());
        return 1;
    }
    printf("%s: %zu instructions, %zu data bytes, entry @%llu\n",
           prog.name.c_str(), prog.code.size(), prog.data.size(),
           (unsigned long long)prog.entry);

    IntegrationMode mode = IntegrationMode::Reverse;
    if (argc >= 3) {
        const char *m = argv[2];
        if (!strcmp(m, "off")) mode = IntegrationMode::Off;
        else if (!strcmp(m, "squash")) mode = IntegrationMode::Squash;
        else if (!strcmp(m, "general")) mode = IntegrationMode::General;
        else if (!strcmp(m, "opcode")) mode = IntegrationMode::OpcodeIndexed;
        else if (!strcmp(m, "reverse")) mode = IntegrationMode::Reverse;
        else {
            fprintf(stderr, "unknown mode '%s'\n", m);
            return 2;
        }
    }

    const CoreParams params = integrationParams(mode);
    Core core(prog, params);
    core.run(100'000'000, 2'000'000'000);
    if (!core.halted()) {
        fprintf(stderr, "did not halt within the simulation budget\n");
        return 1;
    }

    const CoreStats &s = core.stats();
    printf("\nretired %llu instructions in %llu cycles (IPC %.3f)\n",
           (unsigned long long)s.retired, (unsigned long long)s.cycles,
           s.ipc());
    printf("integration (%s): rate %.1f%% (direct %llu, reverse %llu), "
           "mis-integrations %llu\n",
           integrationModeName(mode), 100.0 * s.integrationRate(),
           (unsigned long long)s.integratedDirect,
           (unsigned long long)s.integratedReverse,
           (unsigned long long)s.misintegrations);

    if (!core.golden().output().empty()) {
        printf("\nprogram output:");
        for (u64 v : core.golden().output())
            printf(" %llu", (unsigned long long)v);
        printf("\n");
    }
    printf("\nfinal registers (non-zero):\n");
    for (unsigned r = 0; r < numLogRegs; ++r) {
        const u64 v = core.golden().reg(LogReg(r));
        if (v && r != regSp && r != regGp)
            printf("  r%-2u = %llu (0x%llx)\n", r, (unsigned long long)v,
                   (unsigned long long)v);
    }

    const std::string verr = verifyAgainstEmulator(prog, params);
    printf("\nverification vs emulator: %s\n",
           verr.empty() ? "OK" : verr.c_str());
    return verr.empty() ? 0 : 1;
}
