/**
 * @file
 * Quickstart: assemble a small program, run it on the cycle-level core
 * with and without register integration, and print the headline
 * statistics. Start here.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "assembler/parser.hh"
#include "sim/simulator.hh"

using namespace rix;

int
main()
{
    // A loop with the three idioms integration feeds on: an unhoisted
    // invariant address computation, a loop-invariant load, and a
    // function call with callee saves (reverse-integration targets).
    const Program prog = assembleTextOrDie(R"(
helper: lda sp, -16(sp)        # open frame (reverse entry for +16)
        stq ra, 0(sp)
        stq s0, 8(sp)          # save (reverse entry for the fill)
        addqi s0, a0, 3
        mulqi v0, s0, 5
        ldq s0, 8(sp)          # fill: reverse-integrates
        ldq ra, 0(sp)
        lda sp, 16(sp)         # close frame: reverse-integrates
        ret
main:   addqi t9, zero, 5000   # iteration count
        addqi s1, zero, 0
loop:   addqi t1, gp, 64       # unhoisted invariant: general reuse
        ldq t2, 0(t1)          # invariant load: general reuse
        addq s1, s1, t2
        mv a0, t9
        jsr helper
        addq s1, s1, v0
        subqi t9, t9, 1
        bne t9, loop
        syscall 1, s1          # emit the checksum
        halt
        .entry main
    )", "quickstart");

    printf("quickstart: %zu static instructions\n\n", prog.code.size());

    for (IntegrationMode mode :
         {IntegrationMode::Off, IntegrationMode::Reverse}) {
        const CoreParams params = integrationParams(mode);
        const SimReport rep = runSimulation(prog, params);
        printf("integration %-8s: %7llu insts, %7llu cycles, "
               "IPC %.3f, integration rate %.1f%% "
               "(direct %.1f%% + reverse %.1f%%)\n",
               integrationModeName(mode),
               (unsigned long long)rep.core.retired,
               (unsigned long long)rep.core.cycles, rep.ipc(),
               100.0 * rep.core.integrationRate(),
               100.0 * rep.core.integratedDirect / rep.core.retired,
               100.0 * rep.core.integratedReverse / rep.core.retired);
    }

    // The architectural cross-check every run in this repository obeys.
    const std::string err =
        verifyAgainstEmulator(prog, integrationParams(IntegrationMode::Reverse));
    printf("\narchitectural verification vs functional emulator: %s\n",
           err.empty() ? "OK" : err.c_str());
    return err.empty() ? 0 : 1;
}
