/**
 * @file
 * Section 3.5 in miniature: using integration as a substitute for
 * execution-engine complexity. Runs one call-heavy workload across the
 * Figure 7 machine shapes (full, fewer reservation stations, narrower
 * issue, both) with integration off and on, printing the recovery.
 */

#include <cstdio>

#include "sim/simulator.hh"
#include "workload/workload.hh"

using namespace rix;

int
main(int argc, char **argv)
{
    const char *bench = argc > 1 ? argv[1] : "vortex";
    const Program prog = buildWorkload(bench, 1);

    struct Shape
    {
        const char *name;
        CoreParams params;
    };
    const Shape shapes[] = {
        {"base (4-way, 40 RS)", baselineParams()},
        {"RS   (4-way, 20 RS)", reducedRsParams(baselineParams())},
        {"IW   (3-way, 1 LS port)",
         reducedIssueParams(baselineParams())},
        {"IW+RS", reducedRsParams(reducedIssueParams(baselineParams()))},
    };

    printf("workload: %s\n", bench);
    printf("%-26s %12s %12s %10s\n", "machine", "IPC(no-int)",
           "IPC(+reverse)", "recovered");

    double base_ipc = 0;
    for (const Shape &s : shapes) {
        CoreParams off = s.params;
        off.integ.mode = IntegrationMode::Off;
        CoreParams on = s.params;
        on.integ.mode = IntegrationMode::Reverse;
        const double ipc_off = runSimulation(prog, off).ipc();
        const double ipc_on = runSimulation(prog, on).ipc();
        if (base_ipc == 0)
            base_ipc = ipc_off;
        printf("%-26s %12.3f %12.3f %9.1f%%\n", s.name, ipc_off, ipc_on,
               100.0 * (ipc_on / base_ipc - 1.0));
    }

    printf("\nThe 'recovered' column is speedup vs the full machine "
           "without integration:\nintegration claws back most of what "
           "the reduced engines give up\n(the paper's Figure 7 "
           "trade-off).\n");
    return 0;
}
