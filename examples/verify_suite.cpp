/**
 * @file
 * Full-suite verification sweep: every workload under every
 * integration mode, architecturally cross-checked against the
 * functional emulator, with the headline integration metrics.
 *
 *   $ ./build/examples/verify_suite [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.hh"
#include "workload/workload.hh"

using namespace rix;

int
main(int argc, char **argv)
{
    const u64 scale = argc > 1 ? strtoull(argv[1], nullptr, 10) : 1;
    printf("%-8s %9s | per mode: [verify ipc rate%% (direct/reverse) "
           "misint]\n",
           "bench", "insts");
    bool all_ok = true;
    for (const auto &name : workloadNames()) {
        const Program prog = buildWorkload(name, scale);
        Emulator emu(prog);
        emu.run(200'000'000);
        printf("%-8s %9llu |", name.c_str(),
               (unsigned long long)emu.instsExecuted());
        fflush(stdout);
        for (IntegrationMode mode :
             {IntegrationMode::Off, IntegrationMode::Squash,
              IntegrationMode::General, IntegrationMode::OpcodeIndexed,
              IntegrationMode::Reverse}) {
            const CoreParams cp = integrationParams(mode);
            const std::string err =
                verifyAgainstEmulator(prog, cp, 500'000'000,
                                      5'000'000'000ull);
            const SimReport r = runSimulation(prog, cp);
            printf(" [%s %.2f %.1f(%.1f/%.1f) %llu]",
                   err.empty() ? "ok" : "FAIL", r.ipc(),
                   100 * r.core.integrationRate(),
                   100.0 * r.core.integratedDirect / r.core.retired,
                   100.0 * r.core.integratedReverse / r.core.retired,
                   (unsigned long long)r.core.misintegrations);
            if (!err.empty()) {
                printf(" ERR=%s", err.c_str());
                all_ok = false;
            }
            fflush(stdout);
        }
        printf("\n");
    }
    printf("\n%s\n", all_ok ? "ALL VERIFIED" : "FAILURES PRESENT");
    return all_ok ? 0 : 1;
}
