/**
 * @file
 * The paper's Figure 2, live: the general-reuse reference-counting
 * mechanism walked through at the component level.
 *
 * Prints an event trace in the figure's format — for each rename /
 * commit / squash event, the instruction, its renamed form, and the
 * reference-vector transitions (1/T, 0/T, 0/F states) — demonstrating
 * simultaneous register sharing, shadowing, and the squash rules.
 */

#include <cstdio>
#include <map>

#include "core/integration.hh"

using namespace rix;

namespace
{

struct Demo
{
    IntegrationParams params;
    RegStateVector regs;
    IntegrationEngine engine;
    std::map<LogReg, std::pair<PhysReg, u8>> map; // logical -> preg/gen
    u64 seq = 0;

    Demo() : params(makeParams()), regs(params), engine(params, regs) {}

    static IntegrationParams
    makeParams()
    {
        IntegrationParams p;
        p.mode = IntegrationMode::General;
        p.itEntries = 16;
        p.itAssoc = 16;
        p.numPhysRegs = 40;
        return p;
    }

    const char *
    state(PhysReg r) const
    {
        static char buf[16];
        snprintf(buf, sizeof(buf), "%u/%c", regs.count(r),
                 regs.valid(r) ? 'T' : 'F');
        return buf;
    }

    void
    showVector(const std::vector<PhysReg> &interesting) const
    {
        printf("    reference vector:");
        for (PhysReg r : interesting)
            printf("  p%u=%s", r, state(r));
        printf("\n");
    }

    /** Rename one instruction; returns the destination physical reg. */
    PhysReg
    rename(const char *label, Instruction inst, InstAddr pc)
    {
        RenameCandidate c;
        c.inst = inst;
        c.pc = pc;
        c.seq = ++seq;
        if (inst.hasSrc1()) {
            c.hasSrc1 = true;
            c.src1 = map[inst.src1()].first;
            c.src1Gen = map[inst.src1()].second;
        }
        if (inst.hasSrc2()) {
            c.hasSrc2 = true;
            c.src2 = map[inst.src2()].first;
            c.src2Gen = map[inst.src2()].second;
        }
        IntegrationResult res = engine.tryIntegrate(c);
        PhysReg dest;
        if (res.integrated) {
            dest = res.preg;
            regs.addRef(dest);
            printf("%-10s %-22s INTEGRATES p%u (count now %u)\n", label,
                   disassemble(inst).c_str(), dest, regs.count(dest));
        } else {
            dest = regs.allocate();
            regs.markReady(dest); // assume prompt execution
            engine.recordEntries(c, true, dest, regs.gen(dest), false);
            printf("%-10s %-22s allocates p%u\n", label,
                   disassemble(inst).c_str(), dest);
        }
        shadowed[&map[inst.rc]] = map[inst.rc]; // remember for commit
        prev[dest] = map[inst.rc].first;
        map[inst.rc] = {dest, regs.gen(dest)};
        return dest;
    }

    /** Commit: the shadowed previous mapping loses a reference. */
    void
    commit(const char *label, PhysReg dest)
    {
        PhysReg old = prev[dest];
        regs.releaseOverwrite(old);
        printf("%-10s retire: p%u shadows p%u -> p%u is %s\n", label,
               dest, old, old, state(old));
    }

    /** Squash: the destination loses its mapping (serial undo). */
    void
    squash(const char *label, PhysReg dest)
    {
        regs.releaseSquash(dest);
        printf("%-10s squash: p%u unmapped -> %s\n", label, dest,
               state(dest));
    }

    std::map<std::pair<PhysReg, u8> *, std::pair<PhysReg, u8>> shadowed;
    std::map<PhysReg, PhysReg> prev;
};

} // namespace

int
main()
{
    printf("Figure 2 walkthrough: general reuse via reference "
           "counting\n");
    printf("Three logical registers R1-R3; instructions at PCs "
           "x10/x14/x18.\n\n");

    Demo d;
    // Initial architectural mappings R1..R3 -> p1..p3.
    for (LogReg r = 1; r <= 3; ++r) {
        PhysReg p = d.regs.allocate();
        d.regs.markReady(p);
        d.map[r] = {p, d.regs.gen(p)};
        d.prev[p] = p;
    }

    const Instruction i10 = makeRI(Opcode::ADDQI, 2, 1, 1); // addqi R2,R1,1
    const Instruction i14 = makeRI(Opcode::ADDQI, 3, 2, 1); // addqi R3,R2,1
    const Instruction i18 = makeRI(Opcode::SUBQI, 2, 3, 1); // subqi R2,R3,1

    printf("-- first pass: three allocations, then commits --\n");
    PhysReg p4 = d.rename("#1 x10", i10, 0x10);
    PhysReg p5 = d.rename("#2 x14", i14, 0x14);
    d.commit("#1", p4);
    PhysReg p6 = d.rename("#3 x18", i18, 0x18);
    d.commit("#2", p5);
    d.commit("#3", p6);
    d.showVector({p4, p5, p6});

    printf("\n-- second pass: instances of x10/x14 integrate the "
           "shared registers --\n");
    PhysReg q4 = d.rename("#4 x10", i10, 0x10); // integrates p4 (0/T->1/T)
    PhysReg q5 = d.rename("#5 x14", i14, 0x14); // integrates p5 (1/T->2/T)
    printf("    p%u simultaneously shared: retired mapping of #2 plus "
           "active mapping of #5 (%s)\n", q5, d.state(q5));
    d.commit("#4", q4);
    d.showVector({p4, p5, p6});

    printf("\n-- squash of instruction #5: sharing partially "
           "dissolves --\n");
    d.squash("#5", q5);
    printf("    p%u kept its retired mapping from #2: squash does not "
           "destroy it\n", q5);
    d.showVector({p4, p5, p6});

    printf("\n-- refetch after squash: x14 re-integrates p5 (squash "
           "reuse through the same mechanism) --\n");
    PhysReg r5 = d.rename("#6 x14", i14, 0x14);
    d.showVector({p4, r5, p6});

    printf("\nEvery transition above is the paper's Figure 2 state "
           "machine: mappings increment, shadows and squashes "
           "decrement, 0/T registers stay integration-eligible.\n");
    return 0;
}
