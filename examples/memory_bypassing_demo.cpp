/**
 * @file
 * The paper's Figure 3, live: speculative memory bypassing via reverse
 * integration, run end-to-end on the cycle-level core.
 *
 * The program performs the figure's sequence — caller save of t0, a
 * call that opens a frame and saves s0, a body that overwrites both,
 * then the restores — in a loop. With reverse integration the three
 * fills and the stack-pointer increment integrate instead of
 * executing; the demo prints the integration accounting to show it.
 */

#include <cstdio>

#include "assembler/parser.hh"
#include "sim/simulator.hh"

using namespace rix;

int
main()
{
    const Program prog = assembleTextOrDie(R"(
        # Figure 3 cast: t0 caller-saved, s0 callee-saved.
func:   lda sp, -32(sp)        # (3) open frame: reverse entry for sp
        stq ra, 24(sp)
        stq s0, 4(sp)          # (4) callee save: reverse entry for s0
        addqi s0, a0, 9        # body overwrites s0
        mulqi v0, s0, 7
        ldq s0, 4(sp)          # (5) callee restore: reverse-integrates
        ldq ra, 24(sp)
        lda sp, 32(sp)         # (6) close frame: reverse-integrates sp
        ret                    # (7)
main:   addqi t0, zero, 123
        addqi t9, zero, 4000
        addqi s2, zero, 0
loop:   stq t0, 8(sp)          # (1) caller save: reverse entry for t0
        mv a0, t9
        jsr func               # (2)
        addq s2, s2, v0
        ldq t0, 8(sp)          # (8) caller restore: reverse-integrates
        addq s2, s2, t0
        subqi t9, t9, 1
        bne t9, loop
        syscall 1, s2
        halt
        .entry main
    )", "fig3");

    printf("Figure 3 walkthrough: speculative memory bypassing via "
           "reverse integration\n\n");

    for (IntegrationMode mode : {IntegrationMode::OpcodeIndexed,
                                 IntegrationMode::Reverse}) {
        const SimReport rep =
            runSimulation(prog, integrationParams(mode));
        const CoreStats &s = rep.core;
        printf("mode %-9s: IPC %.3f | integrated: direct %llu, "
               "reverse %llu\n",
               integrationModeName(mode), rep.ipc(),
               (unsigned long long)s.integratedDirect,
               (unsigned long long)s.integratedReverse);
        if (mode == IntegrationMode::Reverse) {
            printf("  reverse stream by type: stack loads %llu "
                   "(fills/restores), ALU %llu (sp increments)\n",
                   (unsigned long long)s.integByType[0][1],
                   (unsigned long long)s.integByType[2][1]);
            printf("  stack loads integrated: %.0f%% of all retired "
                   "sp-based loads\n",
                   100.0 *
                       (s.integByType[0][0] + s.integByType[0][1]) /
                       double(s.retiredSpLoads));
            printf("  executed loads drop: %llu -> see quickstart for "
                   "the bypass effect\n",
                   (unsigned long long)s.issuedLoads);
        }
    }

    printf("\nWith +reverse, each iteration's three restores and the "
           "stack-pointer increment\nbypass the execution engine: the "
           "store's data register IS the load's result,\nexactly the "
           "paper's save/restore short-circuit — including across the "
           "sp\nmodification, because the decrement's inverse entry "
           "restores the pre-call\nphysical register.\n");

    const std::string err = verifyAgainstEmulator(
        prog, integrationParams(IntegrationMode::Reverse));
    printf("\narchitectural verification: %s\n",
           err.empty() ? "OK" : err.c_str());
    return err.empty() ? 0 : 1;
}
