/**
 * @file
 * Shared infrastructure for the benchmark binaries.
 *
 * Since PR 3 the four figure reproductions are *scenario specs* under
 * examples/scenarios/, replayed by the scenario subsystem (see
 * src/sim/scenario.hh and the `rix` CLI); their bench binaries are
 * one-line wrappers. This header keeps the helpers the remaining
 * hand-written benches (throughput, ablations, micro) still use: the
 * environment knobs, single-run and sweep front ends, and the table
 * printing utilities.
 *
 * Environment knobs (validated; 0 or garbage is fatal, not silent):
 *   RIX_SCALE  workload scale factor (default 1; paper-like curves
 *              stabilize around 4)
 *   RIX_BENCH  comma-separated subset of benchmark names to run
 *   RIX_JOBS   simulation worker threads (default: hardware
 *              concurrency; 1 = serial on the calling thread)
 */

#ifndef RIX_BENCH_COMMON_HH
#define RIX_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "base/env.hh"
#include "sim/figures.hh"
#include "sim/scenario.hh"
#include "sim/sweep.hh"
#include "workload/program_cache.hh"

namespace rixbench
{

using namespace rix;

/**
 * The RIX_SCALE knob. Strictly validated: historically this accepted
 * "0" and non-numeric garbage as zero, and a scale-0 workload silently
 * ran 20M instructions to the retired cap instead of failing.
 */
inline u64
scaleFromEnv()
{
    return envPositiveCount("RIX_SCALE", 1);
}

/** The RIX_BENCH selection (validated), default: every workload. */
inline std::vector<std::string>
benchList()
{
    return workloadSelectionFromEnv(workloadNames());
}

/** The shared read-only program for @p name at the RIX_SCALE scale. */
inline const Program &
program(const std::string &name)
{
    return globalProgramCache().get(name, scaleFromEnv());
}

/** One serial simulation (ablation/micro benches; not a sweep). */
inline SimReport
run(const std::string &bench, const CoreParams &params)
{
    return runSimulation(program(bench), params, 20'000'000,
                         200'000'000);
}

/**
 * Figure-sweep front end: phase one registers every (workload, config)
 * point and remembers its slot; then runAll() executes the whole plan
 * across the RIX_JOBS pool; phase two reads reports by slot.
 */
class Sweep
{
  public:
    /** Register a point; returns its slot for at()/wallSeconds(). */
    size_t
    add(const std::string &bench, const CoreParams &params)
    {
        SimJob job;
        job.workload = bench;
        job.scale = scaleFromEnv();
        job.params = params;
        jobs.push_back(std::move(job));
        return jobs.size() - 1;
    }

    /** Execute every registered point (parallel per RIX_JOBS). */
    void
    runAll()
    {
        results = SweepRunner().run(jobs);
    }

    const SimReport &at(size_t slot) const { return results[slot].report; }
    double wallSeconds(size_t slot) const
    {
        return results[slot].wallSeconds;
    }
    size_t size() const { return jobs.size(); }

  private:
    std::vector<SimJob> jobs;
    std::vector<SimJobResult> results;
};

// speedupPct / gmeanSpeedupPct come from base/stats via `using
// namespace rix` — the same single copy the figure renderers use.

inline void
printHeader(const char *title)
{
    printTableHeader(stdout, title);
}

inline void
printRowLabel(const std::string &name)
{
    printTableRowLabel(stdout, name);
}

} // namespace rixbench

#endif // RIX_BENCH_COMMON_HH
