/**
 * @file
 * Shared infrastructure for the figure-reproduction benchmark binaries.
 *
 * Each bench binary regenerates one table/figure of the paper's
 * evaluation (see DESIGN.md's per-experiment index): it runs the
 * cycle-level simulator over the 16 SPEC2000int-like workloads and
 * prints the same rows/series the paper reports.
 *
 * Since PR 2 the benches are written against the parallel sweep
 * engine: they enumerate every (workload, config) point into a Sweep,
 * execute it once across the RIX_JOBS thread pool, and then print from
 * the collected reports. Simulated results are bit-identical for any
 * RIX_JOBS value; only wall-clock changes.
 *
 * Environment knobs:
 *   RIX_SCALE  workload scale factor (default 1; paper-like curves
 *              stabilize around 4)
 *   RIX_BENCH  comma-separated subset of benchmark names to run
 *   RIX_JOBS   simulation worker threads (default: hardware
 *              concurrency; 1 = serial on the calling thread)
 */

#ifndef RIX_BENCH_COMMON_HH
#define RIX_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <array>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "sim/sweep.hh"
#include "workload/program_cache.hh"

namespace rixbench
{

using namespace rix;

inline u64
scaleFromEnv()
{
    const char *s = getenv("RIX_SCALE");
    return s ? strtoull(s, nullptr, 10) : 1;
}

inline std::vector<std::string>
benchList()
{
    std::vector<std::string> all = workloadNames();
    const char *sel = getenv("RIX_BENCH");
    if (!sel)
        return all;
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = sel;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur += *p;
        }
    }
    // A selection that names no valid workload would silently run an
    // empty (or full) set; reject unknown names loudly instead.
    for (const std::string &name : out) {
        if (std::find(all.begin(), all.end(), name) == all.end()) {
            fprintf(stderr,
                    "RIX_BENCH: unknown workload '%s'; valid names:",
                    name.c_str());
            for (const auto &n : all)
                fprintf(stderr, " %s", n.c_str());
            fprintf(stderr, "\n");
            exit(1);
        }
    }
    if (out.empty()) {
        fprintf(stderr,
                "RIX_BENCH is set but selects no workloads ('%s')\n", sel);
        exit(1);
    }
    return out;
}

/** The shared read-only program for @p name at the RIX_SCALE scale. */
inline const Program &
program(const std::string &name)
{
    return globalProgramCache().get(name, scaleFromEnv());
}

/** One serial simulation (ablation/micro benches; not a sweep). */
inline SimReport
run(const std::string &bench, const CoreParams &params)
{
    return runSimulation(program(bench), params, 20'000'000,
                         200'000'000);
}

/**
 * Figure-sweep front end: phase one registers every (workload, config)
 * point and remembers its slot; then runAll() executes the whole plan
 * across the RIX_JOBS pool; phase two reads reports by slot.
 */
class Sweep
{
  public:
    /** Register a point; returns its slot for at()/wallSeconds(). */
    size_t
    add(const std::string &bench, const CoreParams &params)
    {
        SimJob job;
        job.workload = bench;
        job.scale = scaleFromEnv();
        job.params = params;
        jobs.push_back(std::move(job));
        return jobs.size() - 1;
    }

    /** Execute every registered point (parallel per RIX_JOBS). */
    void
    runAll()
    {
        results = SweepRunner().run(jobs);
    }

    const SimReport &at(size_t slot) const { return results[slot].report; }
    double wallSeconds(size_t slot) const
    {
        return results[slot].wallSeconds;
    }
    size_t size() const { return jobs.size(); }

  private:
    std::vector<SimJob> jobs;
    std::vector<SimJobResult> results;
};

/** Percent speedup of @p x over baseline IPC @p base. */
inline double
speedupPct(double base, double x)
{
    return base > 0 ? (x / base - 1.0) * 100.0 : 0.0;
}

inline void
printHeader(const char *title)
{
    printf("\n==== %s ====\n", title);
}

inline void
printRowLabel(const std::string &name)
{
    printf("%-8s", name.c_str());
}

/** Geometric mean of speedup percentages (via ratios, paper style). */
inline double
gmeanSpeedupPct(const std::vector<double> &pcts)
{
    std::vector<double> ratios;
    for (double p : pcts)
        ratios.push_back(1.0 + p / 100.0);
    return (geoMean(ratios) - 1.0) * 100.0;
}

} // namespace rixbench

#endif // RIX_BENCH_COMMON_HH
