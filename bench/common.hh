/**
 * @file
 * Shared infrastructure for the figure-reproduction benchmark binaries.
 *
 * Each bench binary regenerates one table/figure of the paper's
 * evaluation (see DESIGN.md's per-experiment index): it runs the
 * cycle-level simulator over the 16 SPEC2000int-like workloads and
 * prints the same rows/series the paper reports.
 *
 * Environment knobs:
 *   RIX_SCALE  workload scale factor (default 1; paper-like curves
 *              stabilize around 4)
 *   RIX_BENCH  comma-separated subset of benchmark names to run
 */

#ifndef RIX_BENCH_COMMON_HH
#define RIX_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <array>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workload/workload.hh"

namespace rixbench
{

using namespace rix;

inline u64
scaleFromEnv()
{
    const char *s = getenv("RIX_SCALE");
    return s ? strtoull(s, nullptr, 10) : 1;
}

inline std::vector<std::string>
benchList()
{
    std::vector<std::string> all = workloadNames();
    const char *sel = getenv("RIX_BENCH");
    if (!sel)
        return all;
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = sel;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur += *p;
        }
    }
    // A selection that names no valid workload would silently run an
    // empty (or full) set; reject unknown names loudly instead.
    for (const std::string &name : out) {
        if (std::find(all.begin(), all.end(), name) == all.end()) {
            fprintf(stderr,
                    "RIX_BENCH: unknown workload '%s'; valid names:",
                    name.c_str());
            for (const auto &n : all)
                fprintf(stderr, " %s", n.c_str());
            fprintf(stderr, "\n");
            exit(1);
        }
    }
    if (out.empty()) {
        fprintf(stderr,
                "RIX_BENCH is set but selects no workloads ('%s')\n", sel);
        exit(1);
    }
    return out;
}

/** Cache of built programs (mcf's data image is 4MB; build once). */
inline const Program &
program(const std::string &name)
{
    static std::map<std::string, Program> cache;
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, buildWorkload(name, scaleFromEnv())).first;
    return it->second;
}

inline SimReport
run(const std::string &bench, const CoreParams &params)
{
    return runSimulation(program(bench), params, 20'000'000,
                         200'000'000);
}

/** Percent speedup of @p x over baseline IPC @p base. */
inline double
speedupPct(double base, double x)
{
    return base > 0 ? (x / base - 1.0) * 100.0 : 0.0;
}

inline void
printHeader(const char *title)
{
    printf("\n==== %s ====\n", title);
}

inline void
printRowLabel(const std::string &name)
{
    printf("%-8s", name.c_str());
}

/** Geometric mean of speedup percentages (via ratios, paper style). */
inline double
gmeanSpeedupPct(const std::vector<double> &pcts)
{
    std::vector<double> ratios;
    for (double p : pcts)
        ratios.push_back(1.0 + p / 100.0);
    return (geoMean(ratios) - 1.0) * 100.0;
}

} // namespace rixbench

#endif // RIX_BENCH_COMMON_HH
