/**
 * @file
 * Microbenchmarks (experiment E13) of the integration primitives using
 * google-benchmark: IT lookup/insert throughput at the paper's
 * geometry, reference-count operations, LISP probes, and end-to-end
 * simulated-rename throughput of the cycle-level core.
 */

#include <benchmark/benchmark.h>

#include "assembler/builder.hh"
#include "core/integration.hh"
#include "cpu/core.hh"
#include "sim/presets.hh"
#include "workload/workload.hh"

using namespace rix;

namespace
{

IntegrationParams
paperIt()
{
    IntegrationParams p;
    p.mode = IntegrationMode::Reverse;
    p.itEntries = 1024;
    p.itAssoc = 4;
    return p;
}

void
BM_ItLookupHit(benchmark::State &state)
{
    IntegrationTable it(paperIt());
    std::vector<ITKey> keys;
    for (u32 i = 0; i < 256; ++i) {
        ITKey k;
        k.op = Opcode::ADDQI;
        k.imm = s32(i * 8);
        k.callDepth = i % 7;
        k.hasIn1 = true;
        k.in1 = PhysReg(i % 512);
        k.gen1 = u8(i % 16);
        keys.push_back(k);
        it.insert(k, true, PhysReg(i), 0, false, false, i);
    }
    u32 i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(it.lookup(keys[i++ & 255]));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_ItLookupMiss(benchmark::State &state)
{
    IntegrationTable it(paperIt());
    ITKey k;
    k.op = Opcode::MULQ;
    k.hasIn1 = true;
    k.in1 = 3;
    u32 i = 0;
    for (auto _ : state) {
        k.imm = s32(i++);
        benchmark::DoNotOptimize(it.lookup(k));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_ItInsert(benchmark::State &state)
{
    IntegrationTable it(paperIt());
    ITKey k;
    k.op = Opcode::LDQ;
    k.hasIn1 = true;
    u32 i = 0;
    for (auto _ : state) {
        k.imm = s32(i & 0xffff);
        k.in1 = PhysReg(i % 1024);
        benchmark::DoNotOptimize(
            it.insert(k, true, PhysReg(i % 1024), u8(i % 16), false,
                      false, i));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_RefcountCycle(benchmark::State &state)
{
    RegStateVector rs(paperIt());
    for (auto _ : state) {
        PhysReg r = rs.allocate();
        rs.markReady(r);
        rs.addRef(r);
        rs.releaseOverwrite(r);
        rs.releaseSquash(r);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_LispProbe(benchmark::State &state)
{
    Lisp lisp(1024, 2);
    for (u32 i = 0; i < 128; ++i)
        lisp.trainMisintegration(i * 37);
    u32 i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lisp.suppress((i++ * 37) & 8191));
    }
    state.SetItemsProcessed(state.iterations());
}

/** End-to-end simulation throughput (retired instructions/second). */
void
BM_SimulatedCore(benchmark::State &state)
{
    const Program prog = buildWorkload("gzip", 1);
    const bool integ = state.range(0) != 0;
    for (auto _ : state) {
        CoreParams cp = integ
                            ? integrationParams(IntegrationMode::Reverse)
                            : baselineParams();
        Core core(prog, cp);
        core.run(20000, 1'000'000);
        benchmark::DoNotOptimize(core.stats().retired);
        state.SetItemsProcessed(state.items_processed() +
                                s64(core.stats().retired));
    }
}

} // namespace

BENCHMARK(BM_ItLookupHit);
BENCHMARK(BM_ItLookupMiss);
BENCHMARK(BM_ItInsert);
BENCHMARK(BM_RefcountCycle);
BENCHMARK(BM_LispProbe);
BENCHMARK(BM_SimulatedCore)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
