/**
 * @file
 * Ablation E14: pipelined integration (paper section 3.3 discussion).
 *
 * The paper argues from the distance breakdown that integration can be
 * pipelined: separating the IT read and write stages only forfeits the
 * closest-range reuse, bounded by ~20% of integrations for a four-stage
 * integration pipeline on a 4-wide machine (16 renamed instructions of
 * write delay), and squash reuse is impervious because the squashed and
 * re-fetched instances are separated by a flush anyway.
 *
 * This bench sweeps the IT write delay (in renamed instructions) and
 * reports the surviving integration rate and speedup.
 */

#include "bench/common.hh"

using namespace rixbench;

int
main()
{
    std::vector<std::string> benches = benchList();
    if (!getenv("RIX_BENCH"))
        benches = {"crafty", "eon.k", "gap", "gzip",
                   "parser", "perl.s", "vortex", "vpr.r"};

    std::map<std::string, double> baseIpc;
    for (const auto &bm : benches)
        baseIpc[bm] = run(bm, baselineParams()).ipc();

    printHeader("Ablation: pipelined integration -- IT write delay in "
                "renamed instructions (+reverse, realistic LISP)");
    printf("%-8s %10s %12s %12s %12s\n", "delay", "bench", "rate%",
           "kept-vs-0%", "speedup%");

    std::map<std::string, double> rate0;
    for (unsigned delay : {0u, 4u, 8u, 16u, 32u}) {
        double am = 0, kept = 0;
        std::vector<double> sp;
        for (const auto &bm : benches) {
            CoreParams cp = integrationParams(IntegrationMode::Reverse);
            cp.integ.itWriteDelay = delay;
            SimReport r = run(bm, cp);
            const double rate = 100.0 * r.core.integrationRate();
            if (delay == 0)
                rate0[bm] = rate;
            const double k =
                rate0[bm] > 0 ? 100.0 * rate / rate0[bm] : 100.0;
            printf("%-8u %10s %12.1f %12.1f %12.2f\n", delay, bm.c_str(),
                   rate, k, speedupPct(baseIpc[bm], r.ipc()));
            am += rate;
            kept += k;
            sp.push_back(speedupPct(baseIpc[bm], r.ipc()));
        }
        printf("%-8u %10s %12.1f %12.1f %12.2f\n\n", delay, "AMean",
               am / benches.size(), kept / benches.size(),
               gmeanSpeedupPct(sp));
    }

    printf("Paper reference: a 4-stage integration pipeline (16 renamed\n"
           "instructions on the 4-wide machine) forfeits at most ~20%%\n"
           "of integrations, because fewer than 20%% of integrations use\n"
           "results created within the previous 16 instructions.\n");
    return 0;
}
