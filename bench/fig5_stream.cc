/**
 * @file
 * Figure 5 reproduction (experiments E3-E6): breakdowns of the
 * integration retirement stream under the baseline configuration.
 *
 * The experiment lives in the committed scenario spec
 * examples/scenarios/fig5.json, replayed here through the scenario
 * subsystem (identical to `rix run` on the same spec).
 */

#include "sim/scenario.hh"

int
main()
{
    return rix::runScenarioFile(rix::bundledScenarioPath("fig5"));
}
