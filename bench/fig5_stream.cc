/**
 * @file
 * Figure 5 reproduction (experiments E3-E6): breakdowns of the
 * integration retirement stream under the baseline configuration
 * (1K-entry 4-way IT, +reverse, realistic LISP).
 *
 *  - Type: stack-pointer loads / other loads / ALU / branches / FP
 *  - Distance (renamed instructions between entry creation and use)
 *  - Status of the result when the integrating instruction renamed
 *  - Reference count after the integration's increment
 *
 * Every cell is printed as percent of that benchmark's integration
 * stream, split direct/reverse like the paper's solid/striped bars.
 * The per-benchmark integration rate is printed atop each column, as
 * in the figure.
 */

#include <array>

#include "bench/common.hh"

using namespace rixbench;

namespace
{

template <size_t Rows>
void
printBreakdown(const char *title, const std::vector<std::string> &benches,
               const std::map<std::string, SimReport> &reports,
               const std::vector<const char *> &labels,
               u64 (CoreStats::*field)[Rows][2])
{
    const size_t rows = Rows;
    printHeader(title);
    printf("%-11s", "");
    for (const auto &bm : benches)
        printf(" %11s", bm.c_str());
    printf("\n%-11s", "rate%");
    for (const auto &bm : benches)
        printf(" %11.1f", 100.0 * reports.at(bm).core.integrationRate());
    printf("\n");
    for (size_t i = 0; i < rows; ++i) {
        printf("%-11s", labels[i]);
        for (const auto &bm : benches) {
            const CoreStats &s = reports.at(bm).core;
            const double total = double(s.integrated());
            const u64 *cat = (s.*field)[i];
            const double d = total ? 100.0 * cat[0] / total : 0.0;
            const double r = total ? 100.0 * cat[1] / total : 0.0;
            printf(" %5.1f/%5.1f", d, r);
        }
        printf("\n");
    }
}

} // namespace

int
main()
{
    const std::vector<std::string> benches = benchList();

    Sweep sweep;
    std::map<std::string, size_t> slot;
    for (const auto &bm : benches)
        slot[bm] = sweep.add(bm, integrationParams(IntegrationMode::Reverse));
    sweep.runAll();

    std::map<std::string, SimReport> reports;
    for (const auto &bm : benches)
        reports[bm] = sweep.at(slot[bm]);

    printf("All cells: percent of the benchmark's integration stream,\n"
           "direct/reverse (the paper's solid/striped split).\n");

    printBreakdown("Figure 5 Type (load-sp / load / ALU / branch / FP)",
                   benches, reports,
                   {"load-sp", "load", "ALU", "branch", "FP"},
                   &CoreStats::integByType);

    printBreakdown("Figure 5 Distance (renamed insts creator->user)",
                   benches, reports,
                   {"<=4", "<=16", "<=64", "<=256", "<=1024", ">1024"},
                   &CoreStats::integByDistance);

    printBreakdown("Figure 5 Status at integration",
                   benches, reports,
                   {"rename", "issue", "retire", "shadow/sq"},
                   &CoreStats::integByStatus);

    printBreakdown("Figure 5 Refcount after integration",
                   benches, reports,
                   {"==1", "<=3", "<=7", "<=15"},
                   &CoreStats::integByRefcount);

    // Per-type integration coverage (paper: loads integrate at 27%,
    // stack loads at 60%).
    printHeader("Type coverage: integrated / retired within class");
    printf("%-11s %10s %10s\n", "bench", "loads%", "sp-loads%");
    for (const auto &bm : benches) {
        const CoreStats &s = reports.at(bm).core;
        const u64 ld = s.integByType[0][0] + s.integByType[0][1] +
                       s.integByType[1][0] + s.integByType[1][1];
        const u64 sp = s.integByType[0][0] + s.integByType[0][1];
        printf("%-11s %10.1f %10.1f\n", bm.c_str(),
               s.retiredLoads ? 100.0 * ld / s.retiredLoads : 0.0,
               s.retiredSpLoads ? 100.0 * sp / s.retiredSpLoads : 0.0);
    }

    printf("\nPaper reference: fewer than 10%% of integrations within 4\n"
           "instructions and fewer than 20%% within 16 (integration is\n"
           "pipelinable); ~60%% of integrations find the result still\n"
           "actively mapped (refcount >= 1 before increment); most\n"
           "reverse integrations happen after the creator retired.\n");
    return 0;
}
