/**
 * @file
 * Figure 4 reproduction (experiments E1/E2 in DESIGN.md).
 *
 * The figure is now data, not code: the sweep grid lives in the
 * committed scenario spec examples/scenarios/fig4.json, replayed here
 * through the scenario subsystem (identical to `rix run` on the same
 * spec). RIX_SCALE / RIX_BENCH / RIX_JOBS behave as before.
 */

#include "sim/scenario.hh"

int
main()
{
    return rix::runScenarioFile(rix::bundledScenarioPath("fig4"));
}
