/**
 * @file
 * Figure 4 reproduction (experiments E1/E2 in DESIGN.md).
 *
 * Top graph: per-benchmark percent speedup of the four cumulative
 * integration configurations (squash, +general, +opcode, +reverse),
 * each with a realistic LISP and with oracle mis-integration
 * suppression, relative to the same machine with integration off.
 *
 * Bottom graph: the corresponding integration rates, split into direct
 * and reverse integrations, with mis-integrations per million retired
 * instructions (realistic-LISP configuration).
 *
 * Section 3.2 diagnostics: mispredict resolution latency and fetched-
 * instruction deltas between the base machine and +reverse.
 */

#include "bench/common.hh"

using namespace rixbench;

int
main()
{
    const std::vector<std::string> benches = benchList();
    const IntegrationMode modes[4] = {
        IntegrationMode::Squash, IntegrationMode::General,
        IntegrationMode::OpcodeIndexed, IntegrationMode::Reverse};

    struct Cell
    {
        double speedup[2];   // [realistic, oracle]
        double rateDirect;
        double rateReverse;
        double misintPerM;
    };

    // Phase 1: enumerate every (workload, config) point of the figure,
    // then execute the whole plan across the RIX_JOBS pool at once.
    Sweep sweep;
    std::map<std::string, size_t> baseSlot;
    std::map<std::string, std::array<std::array<size_t, 2>, 4>> cellSlot;
    for (const auto &bm : benches) {
        baseSlot[bm] = sweep.add(bm, baselineParams());
        for (int m = 0; m < 4; ++m)
            for (int l = 0; l < 2; ++l)
                cellSlot[bm][m][l] = sweep.add(
                    bm, integrationParams(modes[m],
                                          l ? LispMode::Oracle
                                            : LispMode::Realistic));
    }
    sweep.runAll();

    // Phase 2: fold the reports into the figure's cells.
    std::map<std::string, SimReport> base;
    std::map<std::string, std::array<Cell, 4>> cells;
    std::map<std::string, SimReport> reverseReal;
    for (const auto &bm : benches) {
        base[bm] = sweep.at(baseSlot[bm]);
        for (int m = 0; m < 4; ++m) {
            Cell c{};
            for (int l = 0; l < 2; ++l) {
                const SimReport &r = sweep.at(cellSlot[bm][m][l]);
                c.speedup[l] = speedupPct(base[bm].ipc(), r.ipc());
                if (l == 0) {
                    c.rateDirect = 100.0 * r.core.integratedDirect /
                                   double(r.core.retired);
                    c.rateReverse = 100.0 * r.core.integratedReverse /
                                    double(r.core.retired);
                    c.misintPerM = r.core.misintPerMillion();
                    if (modes[m] == IntegrationMode::Reverse)
                        reverseReal[bm] = r;
                }
            }
            cells[bm][m] = c;
        }
    }

    printHeader("Figure 4 (top): speedup % vs no-integration baseline");
    printf("%-8s |", "bench");
    for (int m = 0; m < 4; ++m)
        printf(" %9s(real/orac) |", integrationModeName(modes[m]));
    printf("\n");
    std::vector<double> gm[4][2];
    for (const auto &bm : benches) {
        printRowLabel(bm);
        printf(" |");
        for (int m = 0; m < 4; ++m) {
            const Cell &c = cells[bm][m];
            printf("     %6.2f /%6.2f    |", c.speedup[0], c.speedup[1]);
            gm[m][0].push_back(c.speedup[0]);
            gm[m][1].push_back(c.speedup[1]);
        }
        printf("\n");
    }
    printRowLabel("GMean");
    printf(" |");
    for (int m = 0; m < 4; ++m)
        printf("     %6.2f /%6.2f    |", gmeanSpeedupPct(gm[m][0]),
               gmeanSpeedupPct(gm[m][1]));
    printf("\n");

    printHeader("Figure 4 (bottom): integration rate % "
                "(direct+reverse) and mis-integrations per 1M retired");
    printf("%-8s |", "bench");
    for (int m = 0; m < 4; ++m)
        printf(" %8s d+r (mi/M) |", integrationModeName(modes[m]));
    printf("\n");
    double am[4][3] = {};
    for (const auto &bm : benches) {
        printRowLabel(bm);
        printf(" |");
        for (int m = 0; m < 4; ++m) {
            const Cell &c = cells[bm][m];
            printf(" %5.1f+%4.1f (%6.0f) |", c.rateDirect, c.rateReverse,
                   c.misintPerM);
            am[m][0] += c.rateDirect;
            am[m][1] += c.rateReverse;
            am[m][2] += c.misintPerM;
        }
        printf("\n");
    }
    printRowLabel("AMean");
    printf(" |");
    for (int m = 0; m < 4; ++m)
        printf(" %5.1f+%4.1f (%6.0f) |", am[m][0] / benches.size(),
               am[m][1] / benches.size(), am[m][2] / benches.size());
    printf("\n");

    printHeader("Section 3.2 diagnostics (base vs +reverse, realistic)");
    printf("%-8s %14s %14s %14s %14s\n", "bench", "resolve(base)",
           "resolve(+rev)", "fetched-delta%", "rate%");
    double rl0 = 0, rl1 = 0, fd = 0;
    for (const auto &bm : benches) {
        const SimReport &b = base[bm];
        const SimReport &r = reverseReal[bm];
        const double fdelta =
            100.0 * (double(r.core.fetched) - double(b.core.fetched)) /
            double(b.core.fetched);
        printf("%-8s %14.1f %14.1f %14.2f %14.1f\n", bm.c_str(),
               b.core.avgMispredResolveLat(),
               r.core.avgMispredResolveLat(), fdelta,
               100.0 * r.core.integrationRate());
        rl0 += b.core.avgMispredResolveLat();
        rl1 += r.core.avgMispredResolveLat();
        fd += fdelta;
    }
    printf("%-8s %14.1f %14.1f %14.2f\n", "AMean", rl0 / benches.size(),
           rl1 / benches.size(), fd / benches.size());

    printf("\nPaper reference: integration rate 2%% -> 10%% -> 12.3%% -> "
           "17%% across the four configurations; mean speedup 8%% "
           "(+reverse, realistic), 9%% oracle; mispredict resolution "
           "26 -> 23.5 cycles; fetched instructions -0.6%%.\n");
    return 0;
}
