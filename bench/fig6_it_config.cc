/**
 * @file
 * Figure 6 reproduction (experiments E7/E8): sensitivity of the
 * +reverse configuration to integration-table geometry.
 *
 * The sweep grid — including the reproduction's extra {4096, 8-bit
 * generation} point (EXPERIMENTS.md E8) — lives in the committed
 * scenario spec examples/scenarios/fig6.json, replayed here through
 * the scenario subsystem (identical to `rix run` on the same spec).
 * Like the paper, the spec selects the eight "every other benchmark"
 * columns; set RIX_BENCH to change the selection.
 */

#include "sim/scenario.hh"

int
main()
{
    return rix::runScenarioFile(rix::bundledScenarioPath("fig6"));
}
