/**
 * @file
 * Figure 6 reproduction (experiments E7/E8): sensitivity of the
 * +reverse configuration to integration-table geometry.
 *
 * Left: associativity sweep {1, 2, 4, full} at 1K entries / 1K
 * physical registers, realistic and oracle suppression.
 * Right: size sweep {64, 256, 1K, 4K} fully associative (the 4K point
 * uses 4K physical registers, as in the paper).
 *
 * Like the paper we show the eight "every other benchmark" columns by
 * default; set RIX_BENCH to change the selection.
 */

#include "base/log.hh"

#include "bench/common.hh"

using namespace rixbench;

namespace
{

std::vector<std::string>
defaultColumns()
{
    if (getenv("RIX_BENCH"))
        return benchList();
    return {"crafty", "eon.k", "gap", "gzip",
            "parser", "perl.s", "vortex", "vpr.r"};
}

} // namespace

int
main()
{
    const std::vector<std::string> benches = defaultColumns();

    const unsigned assocs[4] = {1, 2, 4, 1024};
    // The extra {4096, 8-bit} row quantifies a reproduction finding:
    // in a 4K fully-associative table, entries outlive the 4-bit
    // generation wrap (16 reallocations of a register), reintroducing
    // the register mis-integrations of section 2.2; 8-bit counters
    // restore the expected curve (EXPERIMENTS.md E8).
    struct SizePoint { unsigned entries; unsigned genBits; };
    const SizePoint sizes[5] = {
        {64, 4}, {256, 4}, {1024, 4}, {4096, 4}, {4096, 8}};

    // Phase 1: enumerate the whole figure, then run it as one sweep.
    Sweep sweep;
    std::map<std::string, size_t> baseSlot;
    std::map<std::string, std::array<std::array<size_t, 2>, 4>> assocSlot;
    std::map<std::string, std::array<std::array<size_t, 2>, 5>> sizeSlot;
    for (const auto &bm : benches) {
        baseSlot[bm] = sweep.add(bm, baselineParams());
        for (int a = 0; a < 4; ++a)
            for (int l = 0; l < 2; ++l) {
                CoreParams cp = integrationParams(
                    IntegrationMode::Reverse,
                    l ? LispMode::Oracle : LispMode::Realistic);
                cp.integ.itAssoc = assocs[a];
                assocSlot[bm][a][l] = sweep.add(bm, cp);
            }
        for (int s = 0; s < 5; ++s)
            for (int l = 0; l < 2; ++l) {
                const SizePoint &pt = sizes[s];
                CoreParams cp = integrationParams(
                    IntegrationMode::Reverse,
                    l ? LispMode::Oracle : LispMode::Realistic);
                cp.integ.itEntries = pt.entries;
                cp.integ.itAssoc = pt.entries; // fully associative
                cp.integ.genBits = pt.genBits;
                if (pt.entries == 4096)
                    cp.integ.numPhysRegs = 4096;
                sizeSlot[bm][s][l] = sweep.add(bm, cp);
            }
    }
    sweep.runAll();

    std::map<std::string, double> baseIpc;
    for (const auto &bm : benches)
        baseIpc[bm] = sweep.at(baseSlot[bm]).ipc();

    printHeader("Figure 6 (left): IT associativity, speedup % "
                "(realistic/oracle)");
    printf("%-10s", "assoc");
    for (const auto &bm : benches)
        printf(" %13s", bm.c_str());
    printf(" %13s\n", "GMean");
    for (int a = 0; a < 4; ++a) {
        const unsigned aw = assocs[a];
        printf("%-10s", aw >= 1024 ? "full" : strfmt("%u-way", aw).c_str());
        std::vector<double> gp[2];
        for (const auto &bm : benches) {
            double sp[2];
            for (int l = 0; l < 2; ++l) {
                sp[l] = speedupPct(baseIpc[bm],
                                   sweep.at(assocSlot[bm][a][l]).ipc());
                gp[l].push_back(sp[l]);
            }
            printf(" %6.2f/%6.2f", sp[0], sp[1]);
        }
        printf(" %6.2f/%6.2f\n", gmeanSpeedupPct(gp[0]),
               gmeanSpeedupPct(gp[1]));
    }

    printHeader("Figure 6 (right): IT size (fully assoc), speedup % "
                "(realistic/oracle)");
    printf("%-10s", "entries");
    for (const auto &bm : benches)
        printf(" %13s", bm.c_str());
    printf(" %13s\n", "GMean");
    for (int s = 0; s < 5; ++s) {
        const SizePoint &pt = sizes[s];
        printf("%-10s",
               pt.genBits == 4 ? strfmt("%u", pt.entries).c_str()
                               : strfmt("%u/g8", pt.entries).c_str());
        std::vector<double> gp[2];
        for (const auto &bm : benches) {
            double sp[2];
            for (int l = 0; l < 2; ++l) {
                sp[l] = speedupPct(baseIpc[bm],
                                   sweep.at(sizeSlot[bm][s][l]).ipc());
                gp[l].push_back(sp[l]);
            }
            printf(" %6.2f/%6.2f", sp[0], sp[1]);
        }
        printf(" %6.2f/%6.2f\n", gmeanSpeedupPct(gp[0]),
               gmeanSpeedupPct(gp[1]));
    }

    printf("\nPaper reference: speedup only drops to 7%% (2-way) and 6%%\n"
           "(direct-mapped) from 8%% (4-way), and rises to just 10%% at\n"
           "full associativity -- mis-integrations dampen associativity;\n"
           "reverse integration is insensitive to associativity because\n"
           "stack-frame offsets give a natural conflict-free indexing.\n");
    return 0;
}
