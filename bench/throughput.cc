/**
 * @file
 * Simulation-throughput harness: how fast does the simulator itself
 * run, in simulated kilo-instructions retired per wall-clock second
 * (KIPS)?
 *
 * Unlike the figure benches (which report simulated IPC and
 * integration behaviour), this binary exists to give the repository a
 * regression trajectory for host-side performance work: every
 * optimization PR quotes its per-workload and aggregate KIPS against
 * the previous run.
 *
 * Output: one single-line JSON object per workload, then one aggregate
 * line, each of the form
 *
 *   {"bench": "gzip", "kips": 1234.5, "cycles": 567890,
 *    "retired": 123456, "ipc": 0.87, "wall_s": 0.100}
 *
 * The aggregate line uses "bench": "aggregate"; its kips is total
 * retired instructions over total wall time, so it weights long
 * workloads proportionally. Redirect to BENCH_throughput.json to
 * archive a trajectory point.
 *
 * Knobs: RIX_SCALE / RIX_BENCH as in every bench binary. The machine
 * configuration is the paper's full integration setup (reverse
 * entries, realistic LISP) so the rename/IT/memory hot paths are all
 * exercised.
 */

#include <chrono>

#include "bench/common.hh"

using namespace rixbench;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

void
printLine(const std::string &name, double kips, u64 cycles, u64 retired,
          double ipc, double wall)
{
    printf("{\"bench\": \"%s\", \"kips\": %.1f, \"cycles\": %llu, "
           "\"retired\": %llu, \"ipc\": %.4f, \"wall_s\": %.3f}\n",
           name.c_str(), kips, (unsigned long long)cycles,
           (unsigned long long)retired, ipc, wall);
}

} // namespace

int
main()
{
    const CoreParams params = integrationParams(IntegrationMode::Reverse);

    u64 total_retired = 0;
    u64 total_cycles = 0;
    double total_wall = 0.0;

    for (const auto &bm : benchList()) {
        // Build (and cache) the program outside the timed region: we
        // are measuring the simulator, not the workload generators.
        program(bm);

        const auto t0 = Clock::now();
        const SimReport rep = run(bm, params);
        const double wall = secondsSince(t0);

        const u64 retired = rep.core.retired;
        const double kips = wall > 0 ? retired / 1000.0 / wall : 0.0;
        printLine(bm, kips, rep.core.cycles, retired, rep.ipc(), wall);
        fflush(stdout);

        total_retired += retired;
        total_cycles += rep.core.cycles;
        total_wall += wall;
    }

    const double agg_kips =
        total_wall > 0 ? total_retired / 1000.0 / total_wall : 0.0;
    const double agg_ipc =
        total_cycles ? double(total_retired) / double(total_cycles) : 0.0;
    printLine("aggregate", agg_kips, total_cycles, total_retired, agg_ipc,
              total_wall);
    return 0;
}
