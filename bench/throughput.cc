/**
 * @file
 * Simulation-throughput harness: how fast does the simulator itself
 * run, in simulated kilo-instructions retired per wall-clock second
 * (KIPS)?
 *
 * Unlike the figure benches (which report simulated IPC and
 * integration behaviour), this binary exists to give the repository a
 * regression trajectory for host-side performance work: every
 * optimization PR quotes its per-workload and aggregate KIPS against
 * the previous run.
 *
 * Output: one single-line JSON object per workload, then one aggregate
 * line, each of the form
 *
 *   {"bench": "gzip", "kips": 1234.5, "cycles": 567890,
 *    "retired": 123456, "ipc": 0.87, "wall_s": 0.100}
 *
 * The aggregate line uses "bench": "aggregate"; its kips is total
 * retired instructions over total wall time, so it weights long
 * workloads proportionally. Redirect to BENCH_throughput.json to
 * archive a trajectory point.
 *
 * Knobs: RIX_SCALE / RIX_BENCH as in every bench binary, plus
 * RIX_JOBS for the sweep engine's worker count. Per-workload kips and
 * the aggregate's "kips"/"wall_s" are computed from per-job simulation
 * time (summed), so they stay comparable across RIX_JOBS settings and
 * with the historical serial trajectory; the aggregate additionally
 * reports "elapsed_s", the actual wall clock of the whole (parallel)
 * run. The machine configuration is the paper's full integration
 * setup (reverse entries, realistic LISP) so the rename/IT/memory hot
 * paths are all exercised.
 */

#include <chrono>

#include "bench/common.hh"

using namespace rixbench;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

void
printLine(const std::string &name, double kips, u64 cycles, u64 retired,
          double ipc, double wall)
{
    printf("{\"bench\": \"%s\", \"kips\": %.1f, \"cycles\": %llu, "
           "\"retired\": %llu, \"ipc\": %.4f, \"wall_s\": %.3f}\n",
           name.c_str(), kips, (unsigned long long)cycles,
           (unsigned long long)retired, ipc, wall);
}

} // namespace

int
main()
{
    const CoreParams params = integrationParams(IntegrationMode::Reverse);
    const std::vector<std::string> benches = benchList();

    // Build (and cache) the programs outside the timed region: we are
    // measuring the simulator, not the workload generators.
    for (const auto &bm : benches)
        program(bm);

    Sweep sweep;
    std::vector<size_t> slots;
    for (const auto &bm : benches)
        slots.push_back(sweep.add(bm, params));

    const auto t0 = Clock::now();
    sweep.runAll();
    const double elapsed = secondsSince(t0);

    u64 total_retired = 0;
    u64 total_cycles = 0;
    double total_wall = 0.0;

    for (size_t i = 0; i < benches.size(); ++i) {
        const SimReport &rep = sweep.at(slots[i]);
        const double wall = sweep.wallSeconds(slots[i]);

        const u64 retired = rep.core.retired;
        const double kips = wall > 0 ? retired / 1000.0 / wall : 0.0;
        printLine(benches[i], kips, rep.core.cycles, retired, rep.ipc(),
                  wall);

        total_retired += retired;
        total_cycles += rep.core.cycles;
        total_wall += wall;
    }

    const double agg_kips =
        total_wall > 0 ? total_retired / 1000.0 / total_wall : 0.0;
    const double agg_ipc =
        total_cycles ? double(total_retired) / double(total_cycles) : 0.0;
    // Workers actually used: the runner never spawns more threads than
    // there are jobs, and a single job runs inline.
    const size_t jobs_used = std::max<size_t>(
        1, std::min<size_t>(SweepRunner().threads(), benches.size()));
    printf("{\"bench\": \"aggregate\", \"kips\": %.1f, \"cycles\": %llu, "
           "\"retired\": %llu, \"ipc\": %.4f, \"wall_s\": %.3f, "
           "\"elapsed_s\": %.3f, \"jobs\": %zu}\n",
           agg_kips, (unsigned long long)total_cycles,
           (unsigned long long)total_retired, agg_ipc, total_wall, elapsed,
           jobs_used);
    return 0;
}
