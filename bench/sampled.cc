/**
 * @file
 * Sampled-simulation harness: what does sampling buy in wall-clock,
 * and what does it cost in accuracy?
 *
 * For every selected workload, runs the full detailed simulation and
 * then a fast-forward-heavy sampled plan (4 evenly spaced intervals,
 * ~10% detailed coverage, 1/4 of each interval spent on detailed
 * warmup), both end-to-end — the sampled timing *includes* building
 * the architectural checkpoints, which is the honest price of entry.
 * One single-line JSON object per workload plus an aggregate:
 *
 *   {"bench": "mcf", "total_insts": 1030472, "full_s": 0.48,
 *    "sampled_s": 0.09, "speedup": 5.3, "ipc_full": 0.3446,
 *    "ipc_sampled": 0.3433, "ipc_err_pct": 0.38, "coverage": 0.100}
 *
 * The interesting regime is RIX_SCALE >= 8, where full detailed runs
 * get wall-clock-bound; the repository's acceptance bar is >= 2x
 * aggregate speedup there. RIX_SCALE / RIX_BENCH / RIX_JOBS behave as
 * in every bench binary (sampled intervals are independent jobs, so
 * RIX_JOBS parallelizes *within* one workload's run too).
 */

#include <chrono>
#include <cmath>

#include "bench/common.hh"
#include "sim/sampling/checkpoint_cache.hh"
#include "sim/sampling/sampling.hh"

using namespace rixbench;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

constexpr u64 maxRetired = 20'000'000;
constexpr Cycle maxCycles = 200'000'000;

/** ~10% detailed coverage in 4 evenly spaced intervals. */
SamplingPlan
planFor(u64 total_insts)
{
    constexpr u64 intervals = 4;
    const u64 measure = std::max<u64>(1, total_insts / 40);
    const u64 warmup = measure / 4;
    const u64 period = std::max<u64>(total_insts / intervals,
                                     warmup + measure + 1);
    return makePeriodicPlan(period - warmup - measure, warmup, measure,
                            intervals);
}

} // namespace

int
main()
{
    const CoreParams params = integrationParams(IntegrationMode::Reverse);
    const std::vector<std::string> benches = benchList();
    const u64 scale = scaleFromEnv();

    // Programs and whole-run instruction counts (one functional pass
    // per workload) outside every timed region: both the full and the
    // sampled path get them for free from the process-wide caches.
    for (const auto &bm : benches) {
        program(bm);
        globalCheckpointCache().totalInsts(bm, scale, maxRetired);
    }

    double aggFull = 0.0, aggSampled = 0.0;
    std::vector<double> errsPct;

    for (const auto &bm : benches) {
        const u64 total =
            globalCheckpointCache().totalInsts(bm, scale, maxRetired);
        const SamplingPlan plan = planFor(total);

        SimJob job;
        job.workload = bm;
        job.scale = scale;
        job.params = params;
        job.maxRetired = maxRetired;
        job.maxCycles = maxCycles;

        const auto t0 = Clock::now();
        const SimJobResult full = SweepRunner().run({job})[0];
        const double fullS = secondsSince(t0);

        const std::vector<SimJob> intervalJobs = expandPlan(job, plan);
        // Timed end-to-end: fast-forwards (checkpoint builds), warmup
        // and measurement all land inside this window. Checkpoints are
        // pre-built in ascending order so each fast-forward seeds from
        // the previous one — dispatching cold under RIX_JOBS>1 would
        // make every interval worker fast-forward from instruction 0.
        const auto t1 = Clock::now();
        for (const SamplingInterval &iv : plan.intervals)
            globalCheckpointCache().get(bm, scale, iv.checkpointAt);
        const std::vector<SimJobResult> parts =
            SweepRunner().run(intervalJobs);
        const double sampledS = secondsSince(t1);

        SimJobResult merged;
        const SampledSummary s =
            mergeIntervals(plan, parts.data(), total, &merged);

        const double ipcFull = full.report.ipc();
        const double errPct =
            ipcFull > 0 ? 100.0 * std::fabs(s.ipc() - ipcFull) / ipcFull
                        : 0.0;
        printf("{\"bench\": \"%s\", \"total_insts\": %llu, "
               "\"full_s\": %.3f, \"sampled_s\": %.3f, "
               "\"speedup\": %.2f, \"ipc_full\": %.4f, "
               "\"ipc_sampled\": %.4f, \"ipc_err_pct\": %.2f, "
               "\"coverage\": %.3f}\n",
               bm.c_str(), (unsigned long long)total, fullS, sampledS,
               sampledS > 0 ? fullS / sampledS : 0.0, ipcFull, s.ipc(),
               errPct, s.coverage());

        aggFull += fullS;
        aggSampled += sampledS;
        errsPct.push_back(errPct);
    }

    printf("{\"bench\": \"aggregate\", \"full_s\": %.3f, "
           "\"sampled_s\": %.3f, \"speedup\": %.2f, "
           "\"mean_ipc_err_pct\": %.2f, \"scale\": %llu, \"jobs\": %u}\n",
           aggFull, aggSampled,
           aggSampled > 0 ? aggFull / aggSampled : 0.0,
           arithMean(errsPct), (unsigned long long)scale,
           SweepRunner().threads());
    return 0;
}
