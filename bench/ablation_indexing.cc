/**
 * @file
 * Ablation E12: the two IT-indexing design choices of sections 2.3/2.4.
 *
 * (a) Call-depth component of the opcode index on/off: without it the
 *     opcode/immediate combination "produces a poor distribution and
 *     induces numerous conflicts".
 * (b) Reverse entries vs effective IT capacity: reverse entries
 *     displace direct entries from the unified table (section 2.4
 *     "reverse entries vs. reverse lookup"); a double-size table bounds
 *     the displacement cost.
 */

#include "bench/common.hh"

using namespace rixbench;

int
main()
{
    std::vector<std::string> benches = benchList();
    if (!getenv("RIX_BENCH"))
        benches = {"crafty", "eon.k", "gap", "gzip",
                   "parser", "perl.s", "vortex", "vpr.r"};

    printHeader("Ablation (a): call-depth index component (+reverse, "
                "realistic LISP)");
    printf("%-10s %10s %12s %12s\n", "calldepth", "bench", "rate%",
           "reverse%");
    for (bool cd : {true, false}) {
        double am = 0, rm = 0;
        for (const auto &bm : benches) {
            CoreParams cp = integrationParams(IntegrationMode::Reverse);
            cp.integ.useCallDepthIndex = cd;
            SimReport r = run(bm, cp);
            const double rate = 100.0 * r.core.integrationRate();
            const double rrate =
                100.0 * r.core.integratedReverse / double(r.core.retired);
            printf("%-10s %10s %12.1f %12.1f\n", cd ? "on" : "off",
                   bm.c_str(), rate, rrate);
            am += rate;
            rm += rrate;
        }
        printf("%-10s %10s %12.1f %12.1f\n\n", cd ? "on" : "off", "AMean",
               am / benches.size(), rm / benches.size());
    }

    printHeader("Ablation (b): reverse-entry displacement "
                "(direct rate under +opcode vs +reverse vs +reverse/2K)");
    printf("%-10s %14s %14s %14s\n", "bench", "+opcode d%",
           "+reverse d%", "+reverse2K d%");
    double a0 = 0, a1 = 0, a2 = 0;
    for (const auto &bm : benches) {
        SimReport r0 =
            run(bm, integrationParams(IntegrationMode::OpcodeIndexed));
        SimReport r1 =
            run(bm, integrationParams(IntegrationMode::Reverse));
        CoreParams cp = integrationParams(IntegrationMode::Reverse);
        cp.integ.itEntries = 2048;
        SimReport r2 = run(bm, cp);
        const double d0 =
            100.0 * r0.core.integratedDirect / double(r0.core.retired);
        const double d1 =
            100.0 * r1.core.integratedDirect / double(r1.core.retired);
        const double d2 =
            100.0 * r2.core.integratedDirect / double(r2.core.retired);
        printf("%-10s %14.1f %14.1f %14.1f\n", bm.c_str(), d0, d1, d2);
        a0 += d0;
        a1 += d1;
        a2 += d2;
    }
    printf("%-10s %14.1f %14.1f %14.1f\n", "AMean", a0 / benches.size(),
           a1 / benches.size(), a2 / benches.size());

    printf("\nPaper reference: the call depth groups instructions by\n"
           "function and dynamic invocation, fixing the opcode index's\n"
           "conflicts; reverse entries cost direct-entry capacity but\n"
           "avoid doubling IT read bandwidth.\n");
    return 0;
}
