/**
 * @file
 * Functional-mode throughput harness: how fast does the architectural
 * emulator itself run, in kilo-instructions executed per wall-clock
 * second (KIPS)?
 *
 * The interpreter `Emulator` sits under three load-bearing paths —
 * checkpoint builds / functional fast-forward, whole-run functional
 * counts, and the per-retire lockstep shadow — so its raw stepping
 * speed multiplies directly into sampled-simulation and fuzz
 * wall-time. This binary gives that speed a regression trajectory of
 * its own, exactly like bench/throughput.cc does for the detailed
 * pipeline.
 *
 * Each workload is run to HALT on a bare Emulator (no core, no caches,
 * no checking); programs are built and decoded outside the timed
 * region. Output: one single-line JSON object per workload, then one
 * aggregate line, each of the form
 *
 *   {"bench": "gzip", "kips": 123456.7, "insts": 1234567,
 *    "wall_s": 0.010, "decode": "on"}
 *
 * The aggregate line uses "bench": "aggregate"; its kips is total
 * instructions over total wall time. The "decode" field records which
 * execution core ran: "on" is the pre-decoded fast path, "off" the
 * legacy decode-per-step loop (the RIX_DECODE escape hatch). Redirect
 * to BENCH_functional.json to archive a trajectory point.
 *
 * Knobs: RIX_SCALE / RIX_BENCH as in every bench binary, plus
 * RIX_FUNC_REPS (default 3): each workload is run REPS times and the
 * fastest wall time is reported, de-noising the short runs.
 */

#include <chrono>

#include "base/log.hh"
#include "bench/common.hh"
#include "emu/emulator.hh"

using namespace rixbench;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

void
printLine(const std::string &name, double kips, u64 insts, double wall,
          const char *decode)
{
    printf("{\"bench\": \"%s\", \"kips\": %.1f, \"insts\": %llu, "
           "\"wall_s\": %.4f, \"decode\": \"%s\"}\n",
           name.c_str(), kips, (unsigned long long)insts, wall, decode);
}

} // namespace

int
main()
{
    const std::vector<std::string> benches = benchList();
    const u64 reps = envPositiveCount("RIX_FUNC_REPS", 3);
    const char *decode = emulatorDecodeFromEnv() ? "on" : "off";

    // Build (and cache) every program outside the timed region: we are
    // measuring the emulator, not the workload generators or the
    // one-time pre-decode.
    for (const auto &bm : benches)
        program(bm).decoded();

    u64 total_insts = 0;
    double total_wall = 0.0;

    for (const auto &bm : benches) {
        const Program &prog = program(bm);
        Emulator emu(prog);
        u64 insts = 0;
        double best = 0.0;
        for (u64 r = 0; r < reps; ++r) {
            emu.reset();
            const auto t0 = Clock::now();
            insts = emu.run();
            const double wall = secondsSince(t0);
            if (!emu.halted())
                rix_fatal("bench functional: %s did not halt within the "
                          "step budget", bm.c_str());
            if (r == 0 || wall < best)
                best = wall;
        }
        const double kips = best > 0 ? insts / 1000.0 / best : 0.0;
        printLine(bm, kips, insts, best, decode);
        total_insts += insts;
        total_wall += best;
    }

    const double agg_kips =
        total_wall > 0 ? total_insts / 1000.0 / total_wall : 0.0;
    printLine("aggregate", agg_kips, total_insts, total_wall, decode);
    return 0;
}
