/**
 * @file
 * Ablation E11: generation-counter width vs register mis-integrations
 * (paper section 2.2: "four-bit counters eliminate virtually all
 * register mis-integrations"; N-bit counters cut the frequency by 2^N
 * per input).
 *
 * Runs +opcode (general reuse with opcode indexing — the configuration
 * in which register mis-integrations matter; squash reuse barely
 * suffers them) with generation checking disabled, and with 1/2/4-bit
 * counters.
 */

#include "bench/common.hh"

using namespace rixbench;

int
main()
{
    std::vector<std::string> benches = benchList();
    if (!getenv("RIX_BENCH"))
        benches = {"crafty", "eon.k", "gap", "gzip",
                   "parser", "perl.s", "vortex", "vpr.r"};

    printHeader("Ablation: generation counter width (mode +opcode, "
                "realistic LISP)");
    printf("%-10s %10s %14s %14s %12s\n", "genbits", "bench",
           "reg-misint/M", "ld-misint/M", "speedup%");

    struct Cfg
    {
        const char *label;
        bool check;
        unsigned bits;
    };
    const Cfg cfgs[] = {
        {"off", false, 4}, {"1", true, 1}, {"2", true, 2}, {"4", true, 4}};

    std::map<std::string, double> baseIpc;
    for (const auto &bm : benches)
        baseIpc[bm] = run(bm, baselineParams()).ipc();

    for (const auto &c : cfgs) {
        double regm = 0, ldm = 0;
        std::vector<double> sp;
        for (const auto &bm : benches) {
            CoreParams cp = integrationParams(IntegrationMode::OpcodeIndexed);
            cp.integ.useGenCounters = c.check;
            cp.integ.genBits = c.bits;
            SimReport r = run(bm, cp);
            const double rm =
                1e6 * r.core.misintRegisters / double(r.core.retired);
            const double lm =
                1e6 * r.core.misintLoads / double(r.core.retired);
            printf("%-10s %10s %14.1f %14.1f %12.2f\n", c.label,
                   bm.c_str(), rm, lm,
                   speedupPct(baseIpc[bm], r.ipc()));
            regm += rm;
            ldm += lm;
            sp.push_back(speedupPct(baseIpc[bm], r.ipc()));
        }
        printf("%-10s %10s %14.1f %14.1f %12.2f\n\n", c.label, "AMean",
               regm / benches.size(), ldm / benches.size(),
               gmeanSpeedupPct(sp));
    }

    printf("Paper reference: register mis-integrations are frequent in\n"
           "general reuse without counters and virtually eliminated by\n"
           "4-bit counters.\n");
    return 0;
}
