/**
 * @file
 * Figure 7 reproduction (experiments E9/E10): trading integration for
 * execution-engine complexity.
 *
 * Configurations:
 *   base  : 4-way issue, 40 reservation stations
 *   RS    : 4-way issue, 20 reservation stations
 *   IW    : 3-way issue, single shared load/store port
 *   IW+RS : both reductions
 *
 * Each runs without integration, with +reverse and a realistic LISP,
 * and with oracle suppression. Speedups are relative to base without
 * integration; the base-IPC row mirrors the numbers printed across the
 * top of the paper's figure.
 *
 * Section 3.5 diagnostics: executed-instruction and load-execution
 * reduction, and reservation-station occupancy with/without
 * integration.
 */

#include "bench/common.hh"

using namespace rixbench;

int
main()
{
    const std::vector<std::string> benches = benchList();

    struct Config
    {
        const char *name;
        CoreParams (*make)(const CoreParams &);
    };
    const Config configs[4] = {
        {"base", [](const CoreParams &b) { return b; }},
        {"RS", [](const CoreParams &b) { return reducedRsParams(b); }},
        {"IW", [](const CoreParams &b) { return reducedIssueParams(b); }},
        {"IW+RS",
         [](const CoreParams &b) {
             return reducedRsParams(reducedIssueParams(b));
         }},
    };

    // Phase 1: enumerate every point of the figure into one sweep.
    Sweep sweep;
    std::map<std::string, size_t> baseSlot;
    std::map<std::string, std::array<std::array<size_t, 3>, 4>> cfgSlot;
    for (const auto &bm : benches) {
        baseSlot[bm] = sweep.add(bm, baselineParams());
        for (int c = 0; c < 4; ++c) {
            const CoreParams shape = configs[c].make(baselineParams());
            for (int l = 0; l < 3; ++l) {
                CoreParams cp = shape;
                if (l == 0) {
                    cp.integ.mode = IntegrationMode::Off;
                } else {
                    cp.integ.mode = IntegrationMode::Reverse;
                    cp.integ.lisp =
                        l == 1 ? LispMode::Realistic : LispMode::Oracle;
                }
                cfgSlot[bm][c][l] = sweep.add(bm, cp);
            }
        }
    }
    sweep.runAll();

    std::map<std::string, SimReport> baseNoInt;
    for (const auto &bm : benches)
        baseNoInt[bm] = sweep.at(baseSlot[bm]);

    printHeader("Figure 7: speedup % vs base/no-integration "
                "(noint | +reverse realistic | oracle)");
    printf("%-8s baseIPC", "bench");
    for (const auto &c : configs)
        printf(" | %22s", c.name);
    printf("\n");

    std::vector<double> gm[4][3];
    std::map<std::string, SimReport> baseRev;
    for (const auto &bm : benches) {
        printRowLabel(bm);
        printf(" %7.2f", baseNoInt[bm].ipc());
        for (int c = 0; c < 4; ++c) {
            double sp[3];
            for (int l = 0; l < 3; ++l) {
                const SimReport &r = sweep.at(cfgSlot[bm][c][l]);
                sp[l] = speedupPct(baseNoInt[bm].ipc(), r.ipc());
                gm[c][l].push_back(sp[l]);
                if (c == 0 && l == 1)
                    baseRev[bm] = r;
            }
            printf(" | %6.1f %6.1f %6.1f", sp[0], sp[1], sp[2]);
        }
        printf("\n");
    }
    printRowLabel("GMean");
    printf("        ");
    for (int c = 0; c < 4; ++c)
        printf(" | %6.1f %6.1f %6.1f", gmeanSpeedupPct(gm[c][0]),
               gmeanSpeedupPct(gm[c][1]), gmeanSpeedupPct(gm[c][2]));
    printf("\n");

    printHeader("Section 3.5 diagnostics: execution-stream compression "
                "(base machine, +reverse)");
    printf("%-8s %12s %12s %12s %12s\n", "bench", "exec-delta%",
           "loads-delta%", "rsOcc(base)", "rsOcc(+rev)");
    double ed = 0, ld = 0, r0 = 0, r1 = 0;
    for (const auto &bm : benches) {
        const CoreStats &b = baseNoInt[bm].core;
        const CoreStats &r = baseRev[bm].core;
        const double de =
            100.0 * (double(r.issued) - double(b.issued)) /
            double(b.issued);
        const double dl =
            100.0 * (double(r.issuedLoads) - double(b.issuedLoads)) /
            double(b.issuedLoads);
        printf("%-8s %12.1f %12.1f %12.1f %12.1f\n", bm.c_str(), de, dl,
               b.avgRsOccupancy(), r.avgRsOccupancy());
        ed += de;
        ld += dl;
        r0 += b.avgRsOccupancy();
        r1 += r.avgRsOccupancy();
    }
    printf("%-8s %12.1f %12.1f %12.1f %12.1f\n", "AMean",
           ed / benches.size(), ld / benches.size(), r0 / benches.size(),
           r1 / benches.size());

    printf("\nPaper reference: IW costs 12%% (eon hit hardest, -21%%),\n"
           "integration recovers to within 2%% of base; RS costs 10%%,\n"
           "integration recovers to within 1%%; IW+RS costs 18%%,\n"
           "integration recovers to within 7%%. Executed instructions\n"
           "-17%%, executed loads -27%%, RS occupancy 31 -> 27.\n");
    return 0;
}
