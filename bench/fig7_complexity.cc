/**
 * @file
 * Figure 7 reproduction (experiments E9/E10): trading integration for
 * execution-engine complexity (reduced reservation stations, reduced
 * issue width, both).
 *
 * The configuration matrix lives in the committed scenario spec
 * examples/scenarios/fig7.json, replayed here through the scenario
 * subsystem (identical to `rix run` on the same spec).
 */

#include "sim/scenario.hh"

int
main()
{
    return rix::runScenarioFile(rix::bundledScenarioPath("fig7"));
}
