# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_assembler "/root/repo/build/test_assembler")
set_tests_properties(test_assembler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_base "/root/repo/build/test_base")
set_tests_properties(test_base PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_bpred "/root/repo/build/test_bpred")
set_tests_properties(test_bpred PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_core_pipeline "/root/repo/build/test_core_pipeline")
set_tests_properties(test_core_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_emulator "/root/repo/build/test_emulator")
set_tests_properties(test_emulator PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_end_to_end "/root/repo/build/test_end_to_end")
set_tests_properties(test_end_to_end PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_integration_behavior "/root/repo/build/test_integration_behavior")
set_tests_properties(test_integration_behavior PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_integration_engine "/root/repo/build/test_integration_engine")
set_tests_properties(test_integration_engine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_integration_table "/root/repo/build/test_integration_table")
set_tests_properties(test_integration_table PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_isa "/root/repo/build/test_isa")
set_tests_properties(test_isa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_memory_system "/root/repo/build/test_memory_system")
set_tests_properties(test_memory_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_random_programs "/root/repo/build/test_random_programs")
set_tests_properties(test_random_programs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_reg_state "/root/repo/build/test_reg_state")
set_tests_properties(test_reg_state PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;55;add_test;/root/repo/CMakeLists.txt;0;")
